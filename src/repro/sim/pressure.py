"""Time-varying interference pressure bookkeeping.

The :class:`PressureField` answers the simulator's central question:
*what pressure does instance X experience on node N right now?*  The
answer combines the per-unit generated pressures of every *other*
active instance resident on the node (plus any ambient background
pressure), using the logarithmic combination rule of
:func:`repro.cluster.contention.combine_pressures`.

When an instance finishes it is deactivated and its pressure vanishes
— co-runners speed up from their next task onward, which reproduces
the dynamics of real consolidated runs where applications end at
different times.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.apps.base import Workload
from repro.cluster.contention import combine_pressures
from repro.errors import SimulationError


class PressureField:
    """Tracks which instance exerts what pressure on which node."""

    def __init__(self, ambient: Mapping[int, float] | None = None) -> None:
        # instance_key -> node_id -> list of per-unit pressures
        self._contributions: Dict[str, Dict[int, List[float]]] = {}
        self._active: Dict[str, bool] = {}
        self._ambient: Dict[int, float] = dict(ambient or {})
        self._cache: Dict[Tuple[str, int], float] = {}

    def register(
        self, instance_key: str, workload: Workload, units_to_nodes: Mapping[int, int]
    ) -> None:
        """Register a deployed instance's pressure contributions.

        Parameters
        ----------
        instance_key:
            Unique identifier of the instance.
        workload:
            The workload, providing per-unit generated pressure (the
            master unit may exert a discounted pressure).
        units_to_nodes:
            Mapping of unit index to hosting node id.
        """
        if instance_key in self._contributions:
            raise SimulationError(f"instance {instance_key!r} registered twice")
        per_node: Dict[int, List[float]] = {}
        for unit_index, node_id in units_to_nodes.items():
            per_node.setdefault(node_id, []).append(
                workload.generated_pressure_for(unit_index)
            )
        self._contributions[instance_key] = per_node
        self._active[instance_key] = True
        self._cache.clear()

    def deactivate(self, instance_key: str) -> None:
        """Remove a finished instance's pressure from the field."""
        if instance_key not in self._active:
            raise SimulationError(f"unknown instance {instance_key!r}")
        self._active[instance_key] = False
        self._cache.clear()

    def is_active(self, instance_key: str) -> bool:
        """Whether the instance still exerts pressure."""
        return self._active.get(instance_key, False)

    def pressure_seen(self, instance_key: str, node_id: int) -> float:
        """Effective pressure ``instance_key`` experiences on ``node_id``.

        Combines all other active instances' contributions on the node
        and the ambient background pressure.  Results are cached until
        the next activation change.
        """
        cache_key = (instance_key, node_id)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        sources: List[float] = []
        ambient = self._ambient.get(node_id, 0.0)
        if ambient > 0.0:
            sources.append(ambient)
        for other_key, per_node in self._contributions.items():
            if other_key == instance_key or not self._active[other_key]:
                continue
            sources.extend(per_node.get(node_id, ()))
        pressure = combine_pressures(sources)
        self._cache[cache_key] = pressure
        return pressure

    def generated_on(self, node_id: int, *, exclude: str | None = None) -> float:
        """Total pressure present on a node (diagnostics/reporting)."""
        sources: List[float] = []
        ambient = self._ambient.get(node_id, 0.0)
        if ambient > 0.0:
            sources.append(ambient)
        for key, per_node in self._contributions.items():
            if key == exclude or not self._active[key]:
                continue
            sources.extend(per_node.get(node_id, ()))
        return combine_pressures(sources)
