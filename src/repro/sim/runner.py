"""The measurement oracle: profiling-time access to the "testbed".

The paper's model construction only ever observes wall-clock execution
times of controlled runs: the target application deployed across the
cluster, with bubble generators pinned to a chosen subset of nodes at a
chosen pressure (Section 4.1's ``measure`` function).
:class:`ClusterRunner` provides exactly that interface on top of the
simulator, plus the pairwise co-run used for validation (Section 4.3),
and counts every measurement so profiling *cost* can be reported as in
Table 3.

Determinism: each distinct measurement setting maps to a stable seed,
so repeating a measurement returns the same time (like re-reading a
log), while a different ``rep`` index models an independent repeated
run.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro._util import stable_seed
from repro.apps.base import Workload
from repro.obs import recorder as _obs
from repro.apps.catalog import get_workload, make_bubble
from repro.cluster.cluster import ClusterSpec
from repro.cluster.contention import ContentionDomain
from repro.errors import ConfigurationError, MeasurementFault
from repro.faults.injection import attempt_reading
from repro.faults.plan import FaultPlan
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.parallel import fan_out, resolve_workers
from repro.sim.cache import MeasurementCache, cache_key
from repro.sim.execution import CoRunExecutor, DeployedInstance
from repro.sim.noise import NoiseProfile, PRIVATE_TESTBED_NOISE
from repro.units import MAX_PRESSURE


@dataclass(frozen=True)
class MeasurementRequest:
    """One measurement of a :meth:`ClusterRunner.measure_many` batch.

    A request is plain data — the method name plus frozen positional
    and keyword arguments — so batches can be shipped to worker
    processes.  Use the named constructors rather than spelling the
    tuples out.
    """

    method: str
    args: Tuple = ()
    kwargs: Tuple[Tuple[str, object], ...] = ()

    _ALLOWED = (
        "solo_time",
        "measure_time",
        "measure",
        "measure_heterogeneous_time",
        "measure_heterogeneous",
        "measure_network_time",
        "measure_network",
        "measure_network_heterogeneous_time",
        "measure_network_heterogeneous",
        "corun_pair",
        "run_deployments",
    )

    def __post_init__(self) -> None:
        if self.method not in self._ALLOWED:
            raise ConfigurationError(
                f"unknown measurement method {self.method!r}; "
                f"allowed: {', '.join(self._ALLOWED)}"
            )

    def apply(self, runner: "ClusterRunner"):
        """Execute this request against ``runner``."""
        return getattr(runner, self.method)(*self.args, **dict(self.kwargs))

    # -- named constructors -------------------------------------------
    @classmethod
    def solo(cls, abbrev: str, *, num_units: Optional[int] = None):
        """Solo-baseline request (:meth:`ClusterRunner.solo_time`)."""
        return cls("solo_time", (abbrev,), (("num_units", num_units),))

    @classmethod
    def measure(
        cls, abbrev: str, pressure: float, interfering: int, *,
        rep: int = 0, span: Optional[int] = None, normalized: bool = True,
    ):
        """Homogeneous-setting request (Algorithm 1/2's ``measure``)."""
        method = "measure" if normalized else "measure_time"
        return cls(
            method, (abbrev, float(pressure), int(interfering)),
            (("rep", rep), ("span", span)),
        )

    @classmethod
    def network_measure(
        cls, abbrev: str, pressure: float, interfering: int, *,
        rep: int = 0, span: Optional[int] = None, normalized: bool = True,
    ):
        """NETWORK-domain homogeneous-setting request."""
        method = "measure_network" if normalized else "measure_network_time"
        return cls(
            method, (abbrev, float(pressure), int(interfering)),
            (("rep", rep), ("span", span)),
        )

    @classmethod
    def heterogeneous(
        cls, abbrev: str, node_pressures: Mapping[int, float], *,
        rep: int = 0, span: Optional[int] = None, normalized: bool = True,
    ):
        """Arbitrary per-node bubble assignment request."""
        method = "measure_heterogeneous" if normalized else (
            "measure_heterogeneous_time"
        )
        pressures = tuple(sorted((int(n), float(p)) for n, p in
                                 dict(node_pressures).items()))
        return cls(method, (abbrev, pressures), (("rep", rep), ("span", span)))

    @classmethod
    def corun(cls, abbrev_a: str, abbrev_b: str, *, rep: int = 0):
        """Pairwise co-run request (Section 4.3 validation)."""
        return cls("corun_pair", (abbrev_a, abbrev_b), (("rep", rep),))

    @classmethod
    def deployments(
        cls,
        deployments: Sequence[Tuple[str, str, Mapping[int, int]]],
        *,
        rep: int = 0,
    ):
        """Ground-truth co-run of arbitrary deployments."""
        frozen = tuple(
            (key, abbrev, tuple(sorted(dict(units).items())))
            for key, abbrev, units in deployments
        )
        return cls("run_deployments", (frozen,), (("rep", rep),))


#: Per-process runner used by measurement fan-out workers.
_WORKER_RUNNER: Optional["ClusterRunner"] = None


def _init_measurement_worker(blob: bytes) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = pickle.loads(blob)


def _run_measurement_request(request: MeasurementRequest):
    """Execute one request in a worker; report state deltas to the parent.

    Returns ``(value, solo_entries, measurement_delta, cache_entries)``
    where ``solo_entries`` / ``cache_entries`` are everything this
    worker has learned so far (the parent deduplicates in batch order,
    which reproduces the serial accounting exactly).
    """
    runner = _WORKER_RUNNER
    assert runner is not None, "measurement worker not initialized"
    count_before = runner.measurement_count
    value = request.apply(runner)
    cache_entries = (
        runner.cache.fresh_entries() if runner.cache is not None else {}
    )
    return (
        value,
        dict(runner._solo_cache),
        runner.measurement_count - count_before,
        cache_entries,
    )


def _run_request_or_die(payload):
    """Fan-out target for batches whose fault plan kills one worker.

    ``payload`` is ``(request, die, parent_pid)``.  In a pool worker
    with ``die`` set, the process exits hard — modelling a node crash
    mid-batch and breaking the pool.  During the serial recovery the
    parent re-runs the same payload in-process (its pid matches
    ``parent_pid``), so the doomed item computes normally and the batch
    result is identical to an undisturbed run.
    """
    request, die, parent_pid = payload
    if die and os.getpid() != parent_pid:
        os._exit(1)
    return _run_measurement_request(request)


class ClusterRunner:
    """Runs controlled experiments on the simulated cluster.

    Parameters
    ----------
    spec:
        Cluster shape; defaults to the paper's private 8-node testbed.
    noise:
        Environment noise profile.
    base_seed:
        Root seed; every measurement derives a stable child seed.
    workload_factory:
        Hook for substituting the catalog (used by the EC2 environment
        and by tests with synthetic workloads).
    cache:
        Optional persistent measurement store.  Because every
        measurement is a deterministic function of its stable-seed
        label, a cached result is indistinguishable from re-running
        the simulation — re-running a benchmark replays recorded
        times like re-reading a run log.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`.  When any of
        its rates are nonzero, every measurement runs on the retrying
        path: attempts can crash (and are retried with deterministic
        simulated-time backoff), probe readings can come back
        straggler-inflated or as outliers, and parallel fan-out batches
        can lose workers.  All fault decisions are stable functions of
        the measurement labels, so a faulty run replays byte-identically.
    retry:
        Retry budget/backoff for faulting measurements; defaults to
        :data:`~repro.faults.retry.DEFAULT_RETRY_POLICY`.
    network_ambient:
        Constant NETWORK-domain background pressure applied to every
        node's uplink in every run (the ``--network-noise`` injection).
        Deterministic (no RNG draw) and 0.0 by default, which keeps the
        environment fingerprint — and therefore every cache key and
        measurement — byte-identical to builds without the flag.
    """

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        *,
        noise: NoiseProfile = PRIVATE_TESTBED_NOISE,
        base_seed: int = 2016,
        workload_factory=get_workload,
        cache: Optional[MeasurementCache] = None,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        network_ambient: float = 0.0,
    ) -> None:
        self.spec = spec or ClusterSpec()
        self.noise = noise
        self.base_seed = base_seed
        if not 0.0 <= network_ambient <= MAX_PRESSURE:
            raise ConfigurationError(
                f"network_ambient must be in [0, {MAX_PRESSURE}], "
                f"got {network_ambient!r}"
            )
        self.network_ambient = float(network_ambient)
        self._workload_factory = workload_factory
        self._solo_cache: Dict[Tuple[str, int], float] = {}
        self.measurement_count = 0
        #: Simulated runs spent on solo baselines (Table 3's reported
        #: profiling cost must account for these too).
        self.solo_measurement_count = 0
        self.cache = cache
        self.faults = faults
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        #: Workloads for which some reading exhausted its retry budget.
        #: Consumers (admission control) treat these as *degraded*: their
        #: profiles partially rest on fallbacks, so predictions fall
        #: back to the conservative ALL-max mapping.
        self.faulted_workloads: Set[str] = set()
        self._fanout_batches = 0
        self._fingerprint = self._environment_fingerprint()

    # ------------------------------------------------------------------
    # Persistent-cache plumbing
    # ------------------------------------------------------------------
    def _environment_fingerprint(self) -> str:
        """Stable identity of this measurement environment.

        Cache entries are only replayed for an identical environment:
        same cluster shape, same base seed, same noise profile — and,
        when fault injection is active, the same fault plan: a reading
        recorded under injected faults must never be replayed into a
        clean run (or vice versa).
        """
        noise = self.noise
        ambient = (
            None if noise.ambient is None
            else (noise.ambient.max_pressure, noise.ambient.occupancy)
        )
        parts = [
            "v1",
            self.spec.num_nodes,
            self.spec.cores_per_node,
            self.base_seed,
            noise.jitter_scale,
            ambient,
            noise.stall.prob_at_max,
            noise.stall.scale,
        ]
        if self.faults_active:
            parts.append(self.faults.signature())
        # Appended only when active so flat-network cache keys are
        # unchanged from scalar-era builds.
        if self.network_ambient > 0.0:
            parts.append(("netamb", self.network_ambient))
        return "|".join(str(part) for part in parts)

    @property
    def faults_active(self) -> bool:
        """Whether measurements run on the fault-injected retrying path."""
        return self.faults is not None and self.faults.enabled

    def _read(
        self,
        label: Tuple,
        simulate: Callable[[], float],
        *,
        workloads: Sequence[str],
        perturb: bool,
    ) -> float:
        """One reading, fault-injected and retried when faults are active.

        The clean path (no plan, or an all-zero plan) is exactly
        ``simulate()`` — no extra spans, counters, or draws — so runs
        without ``--faults`` stay byte-identical to pre-fault builds.
        An exhausted retry budget marks every involved workload as
        degraded before the :class:`~repro.errors.MeasurementFault`
        propagates.
        """
        if not self.faults_active:
            return simulate()
        try:
            return attempt_reading(
                self.faults,
                self.retry,
                tuple(label),
                simulate,
                workload=",".join(workloads),
                perturb=perturb,
            )
        except MeasurementFault:
            self.faulted_workloads.update(workloads)
            raise

    def _cache_key(self, *labels: object) -> str:
        return cache_key(self._fingerprint, *labels)

    @property
    def total_measurement_count(self) -> int:
        """All simulated runs: interference settings plus solo baselines."""
        return self.measurement_count + self.solo_measurement_count

    # ------------------------------------------------------------------
    # Deployment construction
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of physical hosts in the environment."""
        return self.spec.num_nodes

    def workload(self, abbrev: str) -> Workload:
        """Instantiate the workload behind ``abbrev``."""
        return self._workload_factory(abbrev)

    def full_span_deployment(
        self, abbrev: str, *, instance_key: Optional[str] = None,
        span: Optional[int] = None,
    ) -> DeployedInstance:
        """Deploy one unit of ``abbrev`` per node on nodes 0..span-1.

        ``span`` defaults to the whole cluster (Section 3.1's
        configuration); Section 5 profiles at span 4, the deployment
        size its placements use.
        """
        span = span if span is not None else self.num_nodes
        if not 0 < span <= self.num_nodes:
            raise ConfigurationError(
                f"span {span} outside (0, {self.num_nodes}]"
            )
        workload = self.workload(abbrev)
        units = {i: i for i in range(span)}
        return DeployedInstance(
            instance_key=instance_key or abbrev,
            workload=workload,
            units_to_nodes=units,
        )

    def _bubble_instances(
        self,
        node_pressures: Mapping[int, float],
        *,
        domain: ContentionDomain = ContentionDomain.COMPUTE,
    ) -> List[DeployedInstance]:
        prefix = (
            "netbubble" if domain is ContentionDomain.NETWORK else "bubble"
        )
        instances: List[DeployedInstance] = []
        for node_id, level in sorted(node_pressures.items()):
            if level <= 0.0:
                continue
            if not 0 <= node_id < self.num_nodes:
                raise ConfigurationError(
                    f"interfering node {node_id} outside the {self.num_nodes}-node cluster"
                )
            bubble = make_bubble(min(level, MAX_PRESSURE), domain=domain)
            instances.append(
                DeployedInstance(
                    instance_key=f"{prefix}@n{node_id}",
                    workload=bubble,
                    units_to_nodes={0: node_id},
                )
            )
        return instances

    def _ambient_link(self) -> Optional[Dict[int, float]]:
        """Per-node uplink noise map; ``None`` when the link is flat."""
        if self.network_ambient <= 0.0:
            return None
        return {n: self.network_ambient for n in range(self.num_nodes)}

    def interfering_nodes(self, count: int, *, span: Optional[int] = None) -> List[int]:
        """Which nodes host bubbles for a ``count``-node setting.

        Bubbles fill from the highest-numbered spanned node downward so
        the master (node 0) is interfered with last, mirroring the
        common experimental practice of keeping the head node clean as
        long as possible.
        """
        span = span if span is not None else self.num_nodes
        if not 0 <= count <= span <= self.num_nodes:
            raise ConfigurationError(
                f"interfering-node count {count} outside [0, span {span}]"
            )
        return list(range(span - count, span))

    # ------------------------------------------------------------------
    # Measurements (the profiling interface)
    # ------------------------------------------------------------------
    #: Repetitions averaged into the solo baseline.  The baseline is the
    #: denominator of every normalized time, so it is measured more
    #: carefully than individual interference settings.
    SOLO_REPS = 3

    def solo_time(self, abbrev: str, *, num_units: Optional[int] = None) -> float:
        """Execution time of the workload with no interference.

        Cached: the paper measures the solo baseline once per workload
        (we average :attr:`SOLO_REPS` runs to stabilize the
        normalization denominator).  The :attr:`SOLO_REPS` runs count
        toward :attr:`solo_measurement_count` whether they are freshly
        simulated or replayed from the persistent cache, so reported
        profiling costs are replay-independent.
        """
        num_units = num_units if num_units is not None else self.num_nodes
        key = (abbrev, num_units)
        cached = self._solo_cache.get(key)
        if cached is not None:
            _obs.RECORDER.count("measure.solo_memo_hit")
            return cached
        with _obs.RECORDER.span(
            "measure.solo", workload=abbrev, units=num_units
        ) as span:
            store_key = self._cache_key("solo", abbrev, num_units)
            solo: Optional[float] = None
            if self.cache is not None:
                recorded = self.cache.get(store_key)
                if recorded is not None:
                    solo = float(recorded)
                    _obs.RECORDER.count("measure.store_hit")
                    span.set(replayed=True)
            if solo is None:
                if self.cache is not None:
                    _obs.RECORDER.count("measure.store_miss")
                units = {i: i % self.num_nodes for i in range(num_units)}

                def simulate_rep(rep: int) -> float:
                    instance = DeployedInstance(abbrev, self.workload(abbrev), units)
                    seed = stable_seed(self.base_seed, abbrev, "solo", num_units, rep)
                    return CoRunExecutor(
                        [instance], seed=seed, noise=self.noise,
                        num_nodes=self.num_nodes,
                        ambient_link=self._ambient_link(),
                    ).run()[abbrev].finish_time

                # The solo baseline is every normalization's denominator,
                # so its runs can crash and be retried but are never
                # value-perturbed (perturb=False).
                times = [
                    self._read(
                        ("solo", abbrev, num_units, rep),
                        lambda rep=rep: simulate_rep(rep),
                        workloads=(abbrev,),
                        perturb=False,
                    )
                    for rep in range(self.SOLO_REPS)
                ]
                solo = sum(times) / len(times)
                _obs.RECORDER.count("measure.simulated", self.SOLO_REPS)
                if self.cache is not None:
                    self.cache.put(store_key, solo)
            span.set_sim(solo)
        self._solo_cache[key] = solo
        self.solo_measurement_count += self.SOLO_REPS
        return solo

    def measure_time(
        self, abbrev: str, pressure: float, interfering: int, *, rep: int = 0,
        span: Optional[int] = None,
    ) -> float:
        """Absolute time with ``interfering`` nodes at ``pressure``.

        This is the paper's ``measure(i, j)`` (Algorithm 1/2), counted
        toward profiling cost.  ``span`` selects the deployment size
        the model is being profiled for.
        """
        if pressure == 0.0 or interfering == 0:
            return self.solo_time(abbrev, num_units=span)
        nodes = self.interfering_nodes(interfering, span=span)
        node_pressures = {n: pressure for n in nodes}
        return self.measure_heterogeneous_time(
            abbrev, node_pressures, rep=rep, span=span,
            _label=("hom", pressure, interfering, span),
        )

    def measure(
        self, abbrev: str, pressure: float, interfering: int, *, rep: int = 0,
        span: Optional[int] = None,
    ) -> float:
        """Normalized time with ``interfering`` nodes at ``pressure``."""
        return self.measure_time(
            abbrev, pressure, interfering, rep=rep, span=span
        ) / self.solo_time(abbrev, num_units=span)

    def measure_heterogeneous_time(
        self,
        abbrev: str,
        node_pressures: Mapping[int, float],
        *,
        rep: int = 0,
        span: Optional[int] = None,
        _label: Optional[Tuple] = None,
    ) -> float:
        """Absolute time with an arbitrary per-node bubble assignment.

        Counts toward :attr:`measurement_count` whether simulated
        fresh or replayed from the persistent cache.
        """
        node_pressures = dict(node_pressures)
        label = _label or (
            ("het", span) + tuple(sorted(node_pressures.items()))
        )
        return self._measure_setting_time(
            abbrev, node_pressures, rep=rep, span=span, label=label,
            domain=ContentionDomain.COMPUTE,
        )

    def _measure_setting_time(
        self,
        abbrev: str,
        node_pressures: Dict[int, float],
        *,
        rep: int,
        span: Optional[int],
        label: Tuple,
        domain: ContentionDomain,
    ) -> float:
        """Shared measurement core for both contention domains.

        ``domain`` only selects which bubble variant is pinned to the
        interfering nodes; labels, seeds, cache keys, and accounting
        are the caller's and stay byte-identical for COMPUTE settings.
        """
        self.measurement_count += 1
        attrs = {"workload": abbrev, "kind": label[0], "rep": rep}
        if label[0] in ("hom", "nethom"):
            attrs["pressure"] = float(label[1])
            attrs["interfering"] = int(label[2])
        else:
            attrs["nodes"] = len(node_pressures)
        with _obs.RECORDER.span("measure.setting", **attrs) as obs_span:
            store_key = self._cache_key("measure", abbrev, rep, *label)
            if self.cache is not None:
                recorded = self.cache.get(store_key)
                if recorded is not None:
                    _obs.RECORDER.count("measure.store_hit")
                    obs_span.set(replayed=True).set_sim(float(recorded))
                    return float(recorded)
                _obs.RECORDER.count("measure.store_miss")
            target = self.full_span_deployment(abbrev, span=span)
            bubbles = self._bubble_instances(node_pressures, domain=domain)
            seed = stable_seed(self.base_seed, abbrev, rep, *label)

            def simulate() -> float:
                executor = CoRunExecutor(
                    [target] + bubbles, seed=seed, noise=self.noise,
                    num_nodes=self.num_nodes,
                    ambient_link=self._ambient_link(),
                )
                return executor.run()[abbrev].finish_time

            # Probe readings take the fully perturbable path: stragglers
            # and outliers land here, where robust profiling
            # (median-of-k re-probes) can catch them.
            time = self._read(
                ("measure", abbrev, rep) + tuple(label),
                simulate,
                workloads=(abbrev,),
                perturb=True,
            )
            _obs.RECORDER.count("measure.simulated")
            obs_span.set_sim(time)
            if self.cache is not None:
                self.cache.put(store_key, time)
            return time

    def measure_heterogeneous(
        self, abbrev: str, node_pressures: Mapping[int, float], *, rep: int = 0,
        span: Optional[int] = None,
    ) -> float:
        """Normalized time under a heterogeneous bubble assignment."""
        node_pressures = dict(node_pressures)
        if all(p <= 0.0 for p in node_pressures.values()):
            return 1.0
        time = self.measure_heterogeneous_time(
            abbrev, node_pressures, rep=rep, span=span
        )
        return time / self.solo_time(abbrev, num_units=span)

    # ------------------------------------------------------------------
    # NETWORK-domain measurements
    # ------------------------------------------------------------------
    def measure_network_time(
        self, abbrev: str, pressure: float, interfering: int, *, rep: int = 0,
        span: Optional[int] = None,
    ) -> float:
        """Absolute time with network-noise bubbles on ``interfering`` nodes.

        The NETWORK-domain analogue of :meth:`measure_time`: instead of
        cache thrashers, traffic generators saturate the uplink of the
        interfering nodes at ``pressure``.  Distinct labels
        (``nethom``/``nethet``) keep these settings fully separate from
        COMPUTE measurements in seeds, caches, and accounting.
        """
        if pressure == 0.0 or interfering == 0:
            return self.solo_time(abbrev, num_units=span)
        nodes = self.interfering_nodes(interfering, span=span)
        node_pressures = {n: pressure for n in nodes}
        return self.measure_network_heterogeneous_time(
            abbrev, node_pressures, rep=rep, span=span,
            _label=("nethom", pressure, interfering, span),
        )

    def measure_network(
        self, abbrev: str, pressure: float, interfering: int, *, rep: int = 0,
        span: Optional[int] = None,
    ) -> float:
        """Normalized time under a homogeneous network-noise setting."""
        return self.measure_network_time(
            abbrev, pressure, interfering, rep=rep, span=span
        ) / self.solo_time(abbrev, num_units=span)

    def measure_network_heterogeneous_time(
        self,
        abbrev: str,
        node_pressures: Mapping[int, float],
        *,
        rep: int = 0,
        span: Optional[int] = None,
        _label: Optional[Tuple] = None,
    ) -> float:
        """Absolute time with arbitrary per-node network-noise levels."""
        node_pressures = dict(node_pressures)
        label = _label or (
            ("nethet", span) + tuple(sorted(node_pressures.items()))
        )
        return self._measure_setting_time(
            abbrev, node_pressures, rep=rep, span=span, label=label,
            domain=ContentionDomain.NETWORK,
        )

    def measure_network_heterogeneous(
        self, abbrev: str, node_pressures: Mapping[int, float], *, rep: int = 0,
        span: Optional[int] = None,
    ) -> float:
        """Normalized time under heterogeneous network noise."""
        node_pressures = dict(node_pressures)
        if all(p <= 0.0 for p in node_pressures.values()):
            return 1.0
        time = self.measure_network_heterogeneous_time(
            abbrev, node_pressures, rep=rep, span=span
        )
        return time / self.solo_time(abbrev, num_units=span)

    # ------------------------------------------------------------------
    # Co-runs (validation and placement ground truth)
    # ------------------------------------------------------------------
    def corun_pair(
        self, abbrev_a: str, abbrev_b: str, *, rep: int = 0
    ) -> Dict[str, float]:
        """Run two workloads spanning all nodes together (Section 4.3).

        Returns normalized execution times keyed by instance key
        (``"<abbrev>#0"`` / ``"<abbrev>#1"`` so identical workloads can
        co-run with themselves).
        """
        key_a, key_b = f"{abbrev_a}#0", f"{abbrev_b}#1"
        with _obs.RECORDER.span(
            "measure.corun", a=abbrev_a, b=abbrev_b, rep=rep
        ) as obs_span:
            store_key = self._cache_key("corun", abbrev_a, abbrev_b, rep)
            finish_times: Optional[Dict[str, float]] = None
            if self.cache is not None:
                recorded = self.cache.get(store_key)
                if recorded is not None:
                    finish_times = {k: float(v) for k, v in recorded.items()}
                    _obs.RECORDER.count("measure.store_hit")
                    obs_span.set(replayed=True)
            if finish_times is None:
                if self.cache is not None:
                    _obs.RECORDER.count("measure.store_miss")
                inst_a = self.full_span_deployment(abbrev_a, instance_key=key_a)
                inst_b = self.full_span_deployment(abbrev_b, instance_key=key_b)
                seed = stable_seed(self.base_seed, "corun", abbrev_a, abbrev_b, rep)

                def simulate() -> Dict[str, float]:
                    results = CoRunExecutor(
                        [inst_a, inst_b],
                        seed=seed,
                        noise=self.noise,
                        num_nodes=self.num_nodes,
                        ambient_link=self._ambient_link(),
                        sustained=True,
                    ).run()
                    return {
                        key_a: results[key_a].finish_time,
                        key_b: results[key_b].finish_time,
                    }

                # Ground truth: runs can crash and be retried, but a
                # completed run's values are believed (perturb=False).
                finish_times = self._read(
                    ("corun", abbrev_a, abbrev_b, rep),
                    simulate,
                    workloads=(abbrev_a, abbrev_b),
                    perturb=False,
                )
                _obs.RECORDER.count("measure.simulated")
                if self.cache is not None:
                    self.cache.put(store_key, finish_times)
            obs_span.set_sim(max(finish_times.values()))
        return {
            key_a: finish_times[key_a] / self.solo_time(abbrev_a),
            key_b: finish_times[key_b] / self.solo_time(abbrev_b),
        }

    def run_deployments(
        self,
        deployments: Sequence[Tuple[str, str, Mapping[int, int]]],
        *,
        rep: int = 0,
    ) -> Dict[str, float]:
        """Co-run arbitrary deployments; return normalized times.

        Parameters
        ----------
        deployments:
            Tuples of (instance_key, workload abbrev, unit->node map).
        rep:
            Independent-repetition index.

        Returns
        -------
        dict
            Normalized execution time per instance key; each instance
            is normalized against a solo run of the same unit count.
        """
        deployments = [
            (key, abbrev, dict(units)) for key, abbrev, units in deployments
        ]
        label = tuple(
            (key, abbrev, tuple(sorted(units.items())))
            for key, abbrev, units in deployments
        )
        with _obs.RECORDER.span(
            "measure.deploy", instances=len(deployments), rep=rep
        ) as obs_span:
            store_key = self._cache_key("deploy", rep, *map(str, label))
            finish_times: Optional[Dict[str, float]] = None
            if self.cache is not None:
                recorded = self.cache.get(store_key)
                if recorded is not None:
                    finish_times = {k: float(v) for k, v in recorded.items()}
                    _obs.RECORDER.count("measure.store_hit")
                    obs_span.set(replayed=True)
            if finish_times is None:
                if self.cache is not None:
                    _obs.RECORDER.count("measure.store_miss")
                instances = [
                    DeployedInstance(key, self.workload(abbrev), units)
                    for key, abbrev, units in deployments
                ]
                seed = stable_seed(self.base_seed, "deploy", rep, *map(str, label))

                def simulate() -> Dict[str, float]:
                    results = CoRunExecutor(
                        instances,
                        seed=seed,
                        noise=self.noise,
                        num_nodes=self.num_nodes,
                        ambient_link=self._ambient_link(),
                        sustained=True,
                    ).run()
                    return {
                        key: results[key].finish_time
                        for key, _, _ in deployments
                    }

                # Ground truth for the service's QoS accounting: crash
                # faults retry, but completed values are never perturbed.
                finish_times = self._read(
                    ("deploy", rep) + tuple(map(str, label)),
                    simulate,
                    workloads=tuple(abbrev for _, abbrev, _ in deployments),
                    perturb=False,
                )
                _obs.RECORDER.count("measure.simulated")
                if self.cache is not None:
                    self.cache.put(store_key, finish_times)
            if finish_times:
                obs_span.set_sim(max(finish_times.values()))
        normalized: Dict[str, float] = {}
        for key, abbrev, units in deployments:
            solo = self.solo_time(abbrev, num_units=len(units))
            normalized[key] = finish_times[key] / solo
        return normalized

    # ------------------------------------------------------------------
    # Batch measurement fan-out
    # ------------------------------------------------------------------
    def measure_many(
        self,
        requests: Sequence[MeasurementRequest],
        *,
        max_workers: Optional[int] = None,
    ) -> List:
        """Run a batch of measurements, optionally across processes.

        Because every measurement derives a stable seed from its own
        setting, the batch is order-free and embarrassingly parallel:
        results (and the runner's measurement accounting) are
        bit-identical to issuing the requests one by one in order.

        Parameters
        ----------
        requests:
            The batch, in result order.
        max_workers:
            ``None``/``0``/``1`` run serially in-process; a positive
            count forks that many workers; a negative count uses the
            machine default (:func:`repro.parallel.default_max_workers`).

        Returns
        -------
        list
            One result per request, in request order.
        """
        requests = list(requests)
        workers = resolve_workers(max_workers)
        _obs.RECORDER.count("fanout.batches")
        _obs.RECORDER.count("fanout.requests", len(requests))
        if workers <= 1 or len(requests) < 2:
            with _obs.RECORDER.span(
                "measure.batch", requests=len(requests), workers=1
            ):
                return [request.apply(self) for request in requests]
        try:
            blob = pickle.dumps(self)
        except Exception:
            with _obs.RECORDER.span(
                "measure.batch", requests=len(requests), workers=1
            ):
                return [request.apply(self) for request in requests]
        _obs.RECORDER.count("fanout.parallel_requests", len(requests))
        self._fanout_batches += 1
        batch_no = self._fanout_batches
        with _obs.RECORDER.span(
            "measure.batch", requests=len(requests), workers=workers,
            parallel=True,
        ):
            if self.faults_active and self.faults.pool_fails(("fanout", batch_no)):
                # The plan dooms one worker this batch: ship each request
                # with a die flag; the victim's worker exits hard, and
                # fan_out's BrokenProcessPool recovery re-runs whatever
                # was unfinished serially in the parent.
                victim = self.faults.pool_victim(
                    ("fanout", batch_no), len(requests)
                )
                _obs.RECORDER.count("fault.pool_kill")
                parent_pid = os.getpid()
                outcomes = fan_out(
                    _run_request_or_die,
                    [
                        (request, index == victim, parent_pid)
                        for index, request in enumerate(requests)
                    ],
                    max_workers=workers,
                    initializer=_init_measurement_worker,
                    initargs=(blob,),
                )
            else:
                outcomes = fan_out(
                    _run_measurement_request,
                    requests,
                    max_workers=workers,
                    initializer=_init_measurement_worker,
                    initargs=(blob,),
                )
            values: List = []
            for value, solo_entries, measurement_delta, cache_entries in outcomes:
                # Replay the serial accounting in batch order: each solo
                # baseline is charged once, at the first request that
                # needed it, exactly as the serial path would.
                for key, solo in solo_entries.items():
                    if key not in self._solo_cache:
                        self._solo_cache[key] = solo
                        self.solo_measurement_count += self.SOLO_REPS
                self.measurement_count += measurement_delta
                if self.cache is not None:
                    self.cache.merge(cache_entries)
                values.append(value)
            return values
