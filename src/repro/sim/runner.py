"""The measurement oracle: profiling-time access to the "testbed".

The paper's model construction only ever observes wall-clock execution
times of controlled runs: the target application deployed across the
cluster, with bubble generators pinned to a chosen subset of nodes at a
chosen pressure (Section 4.1's ``measure`` function).
:class:`ClusterRunner` provides exactly that interface on top of the
simulator, plus the pairwise co-run used for validation (Section 4.3),
and counts every measurement so profiling *cost* can be reported as in
Table 3.

Determinism: each distinct measurement setting maps to a stable seed,
so repeating a measurement returns the same time (like re-reading a
log), while a different ``rep`` index models an independent repeated
run.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro._util import stable_seed
from repro.apps.base import Workload
from repro.apps.catalog import get_workload, make_bubble
from repro.cluster.cluster import ClusterSpec
from repro.errors import ConfigurationError
from repro.sim.execution import CoRunExecutor, DeployedInstance
from repro.sim.noise import NoiseProfile, PRIVATE_TESTBED_NOISE
from repro.units import MAX_PRESSURE


class ClusterRunner:
    """Runs controlled experiments on the simulated cluster.

    Parameters
    ----------
    spec:
        Cluster shape; defaults to the paper's private 8-node testbed.
    noise:
        Environment noise profile.
    base_seed:
        Root seed; every measurement derives a stable child seed.
    workload_factory:
        Hook for substituting the catalog (used by the EC2 environment
        and by tests with synthetic workloads).
    """

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        *,
        noise: NoiseProfile = PRIVATE_TESTBED_NOISE,
        base_seed: int = 2016,
        workload_factory=get_workload,
    ) -> None:
        self.spec = spec or ClusterSpec()
        self.noise = noise
        self.base_seed = base_seed
        self._workload_factory = workload_factory
        self._solo_cache: Dict[Tuple[str, int], float] = {}
        self.measurement_count = 0

    # ------------------------------------------------------------------
    # Deployment construction
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of physical hosts in the environment."""
        return self.spec.num_nodes

    def workload(self, abbrev: str) -> Workload:
        """Instantiate the workload behind ``abbrev``."""
        return self._workload_factory(abbrev)

    def full_span_deployment(
        self, abbrev: str, *, instance_key: Optional[str] = None,
        span: Optional[int] = None,
    ) -> DeployedInstance:
        """Deploy one unit of ``abbrev`` per node on nodes 0..span-1.

        ``span`` defaults to the whole cluster (Section 3.1's
        configuration); Section 5 profiles at span 4, the deployment
        size its placements use.
        """
        span = span if span is not None else self.num_nodes
        if not 0 < span <= self.num_nodes:
            raise ConfigurationError(
                f"span {span} outside (0, {self.num_nodes}]"
            )
        workload = self.workload(abbrev)
        units = {i: i for i in range(span)}
        return DeployedInstance(
            instance_key=instance_key or abbrev,
            workload=workload,
            units_to_nodes=units,
        )

    def _bubble_instances(
        self, node_pressures: Mapping[int, float]
    ) -> List[DeployedInstance]:
        instances: List[DeployedInstance] = []
        for node_id, level in sorted(node_pressures.items()):
            if level <= 0.0:
                continue
            if not 0 <= node_id < self.num_nodes:
                raise ConfigurationError(
                    f"interfering node {node_id} outside the {self.num_nodes}-node cluster"
                )
            bubble = make_bubble(min(level, MAX_PRESSURE))
            instances.append(
                DeployedInstance(
                    instance_key=f"bubble@n{node_id}",
                    workload=bubble,
                    units_to_nodes={0: node_id},
                )
            )
        return instances

    def interfering_nodes(self, count: int, *, span: Optional[int] = None) -> List[int]:
        """Which nodes host bubbles for a ``count``-node setting.

        Bubbles fill from the highest-numbered spanned node downward so
        the master (node 0) is interfered with last, mirroring the
        common experimental practice of keeping the head node clean as
        long as possible.
        """
        span = span if span is not None else self.num_nodes
        if not 0 <= count <= span <= self.num_nodes:
            raise ConfigurationError(
                f"interfering-node count {count} outside [0, span {span}]"
            )
        return list(range(span - count, span))

    # ------------------------------------------------------------------
    # Measurements (the profiling interface)
    # ------------------------------------------------------------------
    #: Repetitions averaged into the solo baseline.  The baseline is the
    #: denominator of every normalized time, so it is measured more
    #: carefully than individual interference settings.
    SOLO_REPS = 3

    def solo_time(self, abbrev: str, *, num_units: Optional[int] = None) -> float:
        """Execution time of the workload with no interference.

        Cached: the paper measures the solo baseline once per workload
        (we average :attr:`SOLO_REPS` runs to stabilize the
        normalization denominator).
        """
        num_units = num_units if num_units is not None else self.num_nodes
        key = (abbrev, num_units)
        cached = self._solo_cache.get(key)
        if cached is not None:
            return cached
        units = {i: i % self.num_nodes for i in range(num_units)}
        times = []
        for rep in range(self.SOLO_REPS):
            instance = DeployedInstance(abbrev, self.workload(abbrev), units)
            seed = stable_seed(self.base_seed, abbrev, "solo", num_units, rep)
            result = CoRunExecutor(
                [instance], seed=seed, noise=self.noise, num_nodes=self.num_nodes
            ).run()[abbrev]
            times.append(result.finish_time)
        solo = sum(times) / len(times)
        self._solo_cache[key] = solo
        return solo

    def measure_time(
        self, abbrev: str, pressure: float, interfering: int, *, rep: int = 0,
        span: Optional[int] = None,
    ) -> float:
        """Absolute time with ``interfering`` nodes at ``pressure``.

        This is the paper's ``measure(i, j)`` (Algorithm 1/2), counted
        toward profiling cost.  ``span`` selects the deployment size
        the model is being profiled for.
        """
        if pressure == 0.0 or interfering == 0:
            return self.solo_time(abbrev, num_units=span)
        nodes = self.interfering_nodes(interfering, span=span)
        node_pressures = {n: pressure for n in nodes}
        return self.measure_heterogeneous_time(
            abbrev, node_pressures, rep=rep, span=span,
            _label=("hom", pressure, interfering, span),
        )

    def measure(
        self, abbrev: str, pressure: float, interfering: int, *, rep: int = 0,
        span: Optional[int] = None,
    ) -> float:
        """Normalized time with ``interfering`` nodes at ``pressure``."""
        return self.measure_time(
            abbrev, pressure, interfering, rep=rep, span=span
        ) / self.solo_time(abbrev, num_units=span)

    def measure_heterogeneous_time(
        self,
        abbrev: str,
        node_pressures: Mapping[int, float],
        *,
        rep: int = 0,
        span: Optional[int] = None,
        _label: Optional[Tuple] = None,
    ) -> float:
        """Absolute time with an arbitrary per-node bubble assignment."""
        target = self.full_span_deployment(abbrev, span=span)
        bubbles = self._bubble_instances(node_pressures)
        label = _label or (
            ("het", span) + tuple(sorted(node_pressures.items()))
        )
        seed = stable_seed(self.base_seed, abbrev, rep, *label)
        executor = CoRunExecutor(
            [target] + bubbles, seed=seed, noise=self.noise, num_nodes=self.num_nodes
        )
        self.measurement_count += 1
        return executor.run()[abbrev].finish_time

    def measure_heterogeneous(
        self, abbrev: str, node_pressures: Mapping[int, float], *, rep: int = 0,
        span: Optional[int] = None,
    ) -> float:
        """Normalized time under a heterogeneous bubble assignment."""
        if all(p <= 0.0 for p in node_pressures.values()):
            return 1.0
        time = self.measure_heterogeneous_time(
            abbrev, node_pressures, rep=rep, span=span
        )
        return time / self.solo_time(abbrev, num_units=span)

    # ------------------------------------------------------------------
    # Co-runs (validation and placement ground truth)
    # ------------------------------------------------------------------
    def corun_pair(
        self, abbrev_a: str, abbrev_b: str, *, rep: int = 0
    ) -> Dict[str, float]:
        """Run two workloads spanning all nodes together (Section 4.3).

        Returns normalized execution times keyed by instance key
        (``"<abbrev>#0"`` / ``"<abbrev>#1"`` so identical workloads can
        co-run with themselves).
        """
        key_a, key_b = f"{abbrev_a}#0", f"{abbrev_b}#1"
        inst_a = self.full_span_deployment(abbrev_a, instance_key=key_a)
        inst_b = self.full_span_deployment(abbrev_b, instance_key=key_b)
        seed = stable_seed(self.base_seed, "corun", abbrev_a, abbrev_b, rep)
        results = CoRunExecutor(
            [inst_a, inst_b],
            seed=seed,
            noise=self.noise,
            num_nodes=self.num_nodes,
            sustained=True,
        ).run()
        return {
            key_a: results[key_a].finish_time / self.solo_time(abbrev_a),
            key_b: results[key_b].finish_time / self.solo_time(abbrev_b),
        }

    def run_deployments(
        self,
        deployments: Sequence[Tuple[str, str, Mapping[int, int]]],
        *,
        rep: int = 0,
    ) -> Dict[str, float]:
        """Co-run arbitrary deployments; return normalized times.

        Parameters
        ----------
        deployments:
            Tuples of (instance_key, workload abbrev, unit->node map).
        rep:
            Independent-repetition index.

        Returns
        -------
        dict
            Normalized execution time per instance key; each instance
            is normalized against a solo run of the same unit count.
        """
        instances = [
            DeployedInstance(key, self.workload(abbrev), dict(units))
            for key, abbrev, units in deployments
        ]
        label = tuple(
            (key, abbrev, tuple(sorted(units.items())))
            for key, abbrev, units in deployments
        )
        seed = stable_seed(self.base_seed, "deploy", rep, *map(str, label))
        results = CoRunExecutor(
            instances,
            seed=seed,
            noise=self.noise,
            num_nodes=self.num_nodes,
            sustained=True,
        ).run()
        normalized: Dict[str, float] = {}
        for key, abbrev, units in deployments:
            solo = self.solo_time(abbrev, num_units=len(units))
            normalized[key] = results[key].finish_time / solo
        return normalized
