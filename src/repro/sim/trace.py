"""Execution traces for simulator diagnostics.

An :class:`ExecutionTrace` collects per-stage completion timestamps so
tests can assert clock monotonicity and examples can show where time
goes inside a run.  Tracing is optional and off by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class StageRecord:
    """Completion of one stage of one instance."""

    instance_key: str
    stage_name: str
    completed_at: float


@dataclass
class ExecutionTrace:
    """Time-ordered record of stage completions."""

    records: List[StageRecord] = field(default_factory=list)

    def record_stage(self, instance_key: str, stage_name: str, now: float) -> None:
        """Append one stage-completion record."""
        self.records.append(StageRecord(instance_key, stage_name, now))

    def stages_of(self, instance_key: str) -> List[StageRecord]:
        """Records belonging to one instance, in completion order."""
        return [r for r in self.records if r.instance_key == instance_key]

    def stage_durations(self, instance_key: str) -> List[Tuple[str, float]]:
        """(stage name, duration) pairs for one instance."""
        records = self.stages_of(instance_key)
        durations: List[Tuple[str, float]] = []
        previous = 0.0
        for record in records:
            durations.append((record.stage_name, record.completed_at - previous))
            previous = record.completed_at
        return durations

    def summary(self) -> Dict[str, int]:
        """Number of recorded stages per instance."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.instance_key] = counts.get(record.instance_key, 0) + 1
        return counts
