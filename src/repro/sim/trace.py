"""Execution traces for simulator diagnostics.

An :class:`ExecutionTrace` collects per-stage completion timestamps so
tests can assert clock monotonicity and examples can show where time
goes inside a run.  Tracing is optional and off by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class StageRecord:
    """Completion of one stage of one instance."""

    instance_key: str
    stage_name: str
    completed_at: float


@dataclass
class ExecutionTrace:
    """Time-ordered record of stage completions.

    Records are also indexed per instance as they arrive, so
    :meth:`stages_of` / :meth:`stage_durations` cost O(own stages)
    instead of rescanning every instance's records — metrics that
    iterate all instances used to pay a quadratic full-list scan.
    """

    records: List[StageRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_instance: Dict[str, List[StageRecord]] = {}
        for record in self.records:
            self._by_instance.setdefault(record.instance_key, []).append(record)

    def record_stage(self, instance_key: str, stage_name: str, now: float) -> None:
        """Append one stage-completion record."""
        record = StageRecord(instance_key, stage_name, now)
        self.records.append(record)
        self._by_instance.setdefault(instance_key, []).append(record)

    def stages_of(self, instance_key: str) -> List[StageRecord]:
        """Records belonging to one instance, in completion order."""
        return list(self._by_instance.get(instance_key, ()))

    def stage_durations(self, instance_key: str) -> List[Tuple[str, float]]:
        """(stage name, duration) pairs for one instance."""
        records = self.stages_of(instance_key)
        durations: List[Tuple[str, float]] = []
        previous = 0.0
        for record in records:
            durations.append((record.stage_name, record.completed_at - previous))
            previous = record.completed_at
        return durations

    def summary(self) -> Dict[str, int]:
        """Number of recorded stages per instance."""
        return {
            key: len(records) for key, records in self._by_instance.items()
        }
