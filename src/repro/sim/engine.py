"""Discrete-event simulation core.

A minimal, fast event loop: callbacks are scheduled at absolute or
relative simulated times and executed in time order (FIFO among
same-time events).  The executor in :mod:`repro.sim.execution` builds
task/stage semantics on top of this.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

from repro.errors import SimulationError
from repro.obs import recorder as _obs

Callback = Callable[[], None]

#: Relative tolerance for "now" computed through float arithmetic.
#: ``schedule_at(when)`` turns an absolute time into ``when - now``;
#: when both derive from the same sum of task durations the difference
#: can come out a hair below zero (e.g. ``-1e-18``).  Such deltas are
#: roundoff, not time travel, and are clamped to "immediately".
TIME_EPSILON = 1e-9


class Engine:
    """Event-driven simulation clock.

    Events fire in non-decreasing time order; ties break in scheduling
    order so runs are fully deterministic.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._events_processed: int = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay`` after the current time.

        Raises
        ------
        SimulationError
            If ``delay`` is negative beyond float roundoff (events may
            not fire in the past; deltas within :data:`TIME_EPSILON`
            of zero are clamped to zero).
        """
        if delay < 0.0:
            if delay >= -TIME_EPSILON * max(1.0, abs(self._now)):
                delay = 0.0
            else:
                raise SimulationError(
                    f"cannot schedule into the past (delay={delay})"
                )
        heapq.heappush(self._heap, (self._now + delay, self._seq, callback))
        self._seq += 1

    def schedule_at(self, when: float, callback: Callback) -> None:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        self.schedule(when - self._now, callback)

    def run(self, *, max_events: int = 50_000_000) -> float:
        """Drain the event queue; return the final simulated time.

        Parameters
        ----------
        max_events:
            Safety valve against runaway simulations.

        Raises
        ------
        SimulationError
            If more than ``max_events`` events fire.
        """
        events_before = self._events_processed
        while self._heap:
            when, _seq, callback = heapq.heappop(self._heap)
            if when < self._now:
                raise SimulationError("event queue produced a time regression")
            self._now = when
            self._events_processed += 1
            if self._events_processed > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; likely livelock"
                )
            callback()
        # Telemetry is per drain, never per event: the loop above is the
        # hottest path in the repository.
        recorder = _obs.RECORDER
        recorder.count("engine.runs")
        recorder.count("engine.events", self._events_processed - events_before)
        return self._now

    def stop(self) -> None:
        """Discard all pending events; :meth:`run` returns immediately.

        Used by sustained co-runs: once every instance of interest has
        completed its first pass, the remaining (looping) work is
        irrelevant.
        """
        self._heap.clear()

    def reset(self) -> None:
        """Discard pending events and rewind the clock to zero."""
        self._heap.clear()
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
