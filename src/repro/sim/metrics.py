"""Run metrics derived from execution traces.

Diagnostics the examples and reports use to explain *where* time went
in a co-run: per-stage statistics, iteration-time variability (the
straggler signal behind the propagation classes), and simple
cross-instance comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import SimulationError
from repro.sim.trace import ExecutionTrace


@dataclass(frozen=True)
class StageStats:
    """Summary of one instance's stage durations."""

    instance_key: str
    stages: int
    total_time: float
    mean_stage_time: float
    max_stage_time: float
    stage_time_cv: float

    @property
    def straggler_ratio(self) -> float:
        """Slowest stage over the mean — the barrier-stall signal.

        High-propagation applications under partial interference show
        elevated ratios: most iterations run clean, but the stalled
        ones pay the max over all ranks.
        """
        if self.mean_stage_time == 0:
            return 1.0
        return self.max_stage_time / self.mean_stage_time


def stage_stats(trace: ExecutionTrace, instance_key: str) -> StageStats:
    """Compute stage statistics for one instance from a trace.

    Raises
    ------
    SimulationError
        If the trace holds no stages for the instance.
    """
    durations = [d for _name, d in trace.stage_durations(instance_key)]
    if not durations:
        raise SimulationError(f"no traced stages for {instance_key!r}")
    arr = np.asarray(durations, dtype=float)
    mean = float(arr.mean())
    return StageStats(
        instance_key=instance_key,
        stages=int(arr.size),
        total_time=float(arr.sum()),
        mean_stage_time=mean,
        max_stage_time=float(arr.max()),
        stage_time_cv=float(arr.std() / mean) if mean > 0 else 0.0,
    )


def all_stage_stats(trace: ExecutionTrace) -> Dict[str, StageStats]:
    """Stage statistics for every instance present in the trace."""
    return {
        instance_key: stage_stats(trace, instance_key)
        for instance_key in sorted(trace.summary())
    }


def slowdown_breakdown(
    solo: ExecutionTrace, contended: ExecutionTrace, instance_key: str
) -> List[float]:
    """Per-stage slowdown of a contended run against its solo run.

    Both traces must record the same stage count for the instance;
    the result is the elementwise duration ratio, which localizes
    interference in time (useful for phase-behaviour diagnostics,
    Section 4.4's "Static Profiling" limitation).
    """
    solo_durations = [d for _n, d in solo.stage_durations(instance_key)]
    contended_durations = [d for _n, d in contended.stage_durations(instance_key)]
    if len(solo_durations) != len(contended_durations):
        raise SimulationError(
            f"stage count mismatch for {instance_key!r}: "
            f"{len(solo_durations)} solo vs {len(contended_durations)} contended"
        )
    if not solo_durations:
        raise SimulationError(f"no traced stages for {instance_key!r}")
    return [
        contended / max(solo, 1e-12)
        for solo, contended in zip(solo_durations, contended_durations)
    ]
