"""Discrete-event simulation of consolidated cluster executions."""

from repro.sim.cache import MeasurementCache, cache_key
from repro.sim.engine import Engine
from repro.sim.metrics import (
    StageStats,
    all_stage_stats,
    slowdown_breakdown,
    stage_stats,
)
from repro.sim.execution import CoRunExecutor, DeployedInstance, InstanceResult
from repro.sim.noise import (
    EC2_NOISE,
    PRIVATE_TESTBED_NOISE,
    AmbientNoise,
    NoiseProfile,
    StallModel,
    TaskJitter,
)
from repro.sim.pressure import PressureField
from repro.sim.runner import ClusterRunner, MeasurementRequest
from repro.sim.trace import ExecutionTrace, StageRecord

__all__ = [
    "AmbientNoise",
    "ClusterRunner",
    "CoRunExecutor",
    "DeployedInstance",
    "EC2_NOISE",
    "Engine",
    "ExecutionTrace",
    "InstanceResult",
    "MeasurementCache",
    "MeasurementRequest",
    "NoiseProfile",
    "PRIVATE_TESTBED_NOISE",
    "PressureField",
    "StallModel",
    "StageRecord",
    "StageStats",
    "all_stage_stats",
    "cache_key",
    "slowdown_breakdown",
    "stage_stats",
    "TaskJitter",
]
