"""Stochastic components of the ground-truth simulator.

Two noise sources exist in the paper's measurements and are reproduced
here:

* **Task jitter** — run-to-run variation of compute phases (OS noise,
  hypervisor scheduling).  Modelled as multiplicative log-normal jitter
  with unit mean; its coefficient of variation is per-workload
  (M.Gems's blocked-I/O sensitivity shows up as a larger CV).
* **Ambient pressure** — interference the experimenter cannot see.  On
  the private testbed this is zero; on Amazon EC2 (Section 6) other
  tenants share the hosts, so each node carries a random background
  pressure redrawn per run (VMs may also be silently relocated between
  runs, which the per-run redraw captures).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro._util import make_rng


class TaskJitter:
    """Multiplicative log-normal jitter with unit mean.

    Parameters
    ----------
    cv:
        Coefficient of variation; 0 disables jitter.
    rng:
        Source of randomness.
    """

    def __init__(self, cv: float, rng: np.random.Generator) -> None:
        if cv < 0:
            raise ValueError("cv must be non-negative")
        self._cv = cv
        self._rng = rng
        if cv > 0:
            # For a log-normal with sigma s, CV = sqrt(e^{s^2} - 1).
            self._sigma = math.sqrt(math.log(1.0 + cv * cv))
            self._mu = -0.5 * self._sigma * self._sigma
        else:
            self._sigma = 0.0
            self._mu = 0.0

    def sample(self) -> float:
        """Draw one jitter factor (mean 1.0)."""
        if self._sigma == 0.0:
            return 1.0
        return float(math.exp(self._rng.normal(self._mu, self._sigma)))


class AmbientNoise:
    """Per-node background pressure from unobserved tenants.

    Parameters
    ----------
    max_pressure:
        Upper bound of the background pressure on any node.
    occupancy:
        Probability that a node has a noisy neighbour at all.
    """

    def __init__(self, max_pressure: float = 2.0, occupancy: float = 0.6) -> None:
        if max_pressure < 0:
            raise ValueError("max_pressure must be non-negative")
        if not 0.0 <= occupancy <= 1.0:
            raise ValueError("occupancy must be in [0, 1]")
        self.max_pressure = max_pressure
        self.occupancy = occupancy

    def draw(self, num_nodes: int, seed: object) -> Dict[int, float]:
        """Draw background pressure for each of ``num_nodes`` nodes."""
        rng = make_rng(seed)
        pressures: Dict[int, float] = {}
        for node_id in range(num_nodes):
            if rng.random() < self.occupancy:
                pressures[node_id] = float(rng.uniform(0.0, self.max_pressure))
            else:
                pressures[node_id] = 0.0
        return pressures


@dataclass(frozen=True)
class StallModel:
    """Occasional hypervisor-level stalls under contention.

    Beyond the steady slowdown of cache/bandwidth theft, a contended
    node occasionally stalls a task outright (vCPU descheduling, Dom0
    I/O handling — the effect the paper blames for M.Gems's
    unpredictability in Section 4.3).  A task on a node under pressure
    ``p`` stalls with probability ``prob_at_max * p / MAX_PRESSURE``
    — but only if the workload reacts to pressure at all (a workload
    whose working set is untouched never faults on the contention
    path).  A stall multiplies the task duration by ``1 + Exp(scale)``.

    Stalls are what make *mildly* interfered nodes matter to
    barrier-coupled applications: the mild node rarely wins the
    per-iteration max through its mean slowdown, but its occasional
    stalls do push the barrier — the physical origin of the
    ``N+1 max`` heterogeneity behaviour.
    """

    prob_at_max: float = 0.0
    scale: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob_at_max <= 1.0:
            raise ValueError("prob_at_max must be in [0, 1]")
        if self.scale < 0:
            raise ValueError("scale must be non-negative")

    def factor(
        self, rng: np.random.Generator, pressure: float, reacts: bool
    ) -> float:
        """Sample a stall multiplier (1.0 when no stall occurs)."""
        if self.prob_at_max <= 0.0 or pressure <= 0.0 or not reacts:
            return 1.0
        from repro.units import MAX_PRESSURE  # local import: avoid cycle

        probability = self.prob_at_max * min(pressure, MAX_PRESSURE) / MAX_PRESSURE
        if rng.random() >= probability:
            return 1.0
        return 1.0 + float(rng.exponential(self.scale))


@dataclass(frozen=True)
class NoiseProfile:
    """Bundle of noise settings for a simulation environment.

    ``jitter_scale`` multiplies every workload's own ``noise_cv``;
    ``ambient`` is ``None`` on the controlled private testbed;
    ``stall`` models contention-induced scheduling stalls.
    """

    jitter_scale: float = 1.0
    ambient: AmbientNoise | None = None
    stall: StallModel = StallModel(prob_at_max=0.06, scale=0.6)

    def __post_init__(self) -> None:
        if self.jitter_scale < 0:
            raise ValueError("jitter_scale must be non-negative")


#: The controlled private 8-node testbed (Sections 3-5).
PRIVATE_TESTBED_NOISE = NoiseProfile(jitter_scale=1.0, ambient=None)

#: Amazon EC2 (Section 6): other tenants add unmeasured interference.
EC2_NOISE = NoiseProfile(
    jitter_scale=1.6,
    ambient=AmbientNoise(max_pressure=2.0, occupancy=0.6),
    stall=StallModel(prob_at_max=0.08, scale=0.6),
)
