"""The elastic provider: seeded synthetic instances with spot churn.

``ElasticProvider`` is the provider layer's workhorse: a pool that
starts at ``initial_nodes`` (the low ids durable, the rest spot, split
by ``spot_fraction``), can grow spot capacity up to ``max_nodes`` and
release it again under the :mod:`~repro.providers.autoscaler` policy,
and loses spot instances to seeded two-phase preemption driven by a
:class:`~repro.faults.plan.FaultPlan`'s ``preempt`` family:

1. **warning** — the plan draws, per (spot instance, epoch), whether a
   preemption notice arrives.  A warned instance flips to ``draining``:
   it keeps executing resident units (measurements still run on it)
   but accepts no new work, and the rescheduler gets
   ``preemption_warning_epochs`` epochs to evacuate it through the
   normal migration-cost-gated search.
2. **reclaim** — at ``reclaim_epoch`` the instance leaves the
   inventory.  Any units still resident are evicted by the service and
   their (batch) jobs requeued — never dropped.

Every decision is a pure function of (state, epoch, plan seed), so the
whole churn day replays byte-identically, including across a
checkpoint/resume in the middle of a warning window.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.providers.autoscaler import AutoscalerConfig, decide
from repro.providers.base import (
    DRAINING,
    DURABLE,
    LIVE,
    SPOT,
    CapacityEvent,
    CapacityProvider,
    ProviderInstance,
    register_provider,
)


@register_provider("elastic")
class ElasticProvider(CapacityProvider):
    """A growable pool of durable + spot instances under seeded churn.

    Parameters
    ----------
    max_nodes:
        Pool ceiling; the service's runner must be built this big so
        every mintable node id has a physical identity.
    initial_nodes:
        Instances live at epoch 0.
    spot_fraction:
        Fraction of the initial pool that is spot (rounded down, but
        at least one node stays durable).  Ids are assigned low-first
        to durable, so the durable set is ``0..d-1`` — deterministic
        and easy to read in event logs.
    churn:
        Optional :class:`~repro.faults.plan.FaultPlan` whose
        ``preemption_rate`` / ``preemption_warning_epochs`` drive spot
        preemption.  ``None`` (or a rate of 0) means no churn.
    autoscaler:
        Optional :class:`~repro.providers.autoscaler.AutoscalerConfig`;
        ``None`` disables scaling (the pool only changes through
        preemption).
    """

    name = "elastic"

    def __init__(
        self,
        max_nodes: int,
        *,
        initial_nodes: Optional[int] = None,
        spot_fraction: float = 0.5,
        churn: Optional[FaultPlan] = None,
        autoscaler: Optional[AutoscalerConfig] = None,
    ) -> None:
        super().__init__(max_nodes)
        initial = max_nodes if initial_nodes is None else initial_nodes
        if not 1 <= initial <= max_nodes:
            raise ConfigurationError(
                f"initial_nodes must be in [1, {max_nodes}], got {initial}"
            )
        if not 0.0 <= spot_fraction <= 1.0:
            raise ConfigurationError("spot_fraction must be in [0, 1]")
        self.churn = churn
        self.autoscaler = autoscaler
        spot_count = min(int(initial * spot_fraction), initial - 1)
        durable_count = initial - spot_count
        self._instances = {
            node_id: ProviderInstance(
                node_id=node_id,
                node_class=DURABLE if node_id < durable_count else SPOT,
            )
            for node_id in range(initial)
        }

    # ------------------------------------------------------------------
    def autoscale(
        self,
        epoch: int,
        *,
        queue_depth: int,
        qos_margin: Optional[float],
        idle_nodes: List[int],
    ) -> List[CapacityEvent]:
        if self.autoscaler is None:
            return []
        idle_spot = [
            n for n in idle_nodes
            if self.is_spot(n) and not self.is_draining(n)
        ]
        action, count, victims, reason = decide(
            self.autoscaler,
            queue_depth=queue_depth,
            qos_margin=qos_margin,
            live_count=len(self._instances),
            max_nodes=self._max_nodes,
            idle_spot=idle_spot,
        )
        if action == "hold":
            return []
        events: List[CapacityEvent] = []
        if action == "grow":
            joins = self.grow(count, epoch, node_class=SPOT)
            if not joins:
                return []
            events.append(CapacityEvent(
                kind="autoscale",
                epoch=epoch,
                nodes=joins[0].nodes,
                reason=reason,
                details=(
                    ("action", "grow"),
                    ("pool_size", len(self._instances)),
                ),
            ))
            events.extend(joins)
        else:
            leaves = self.shrink(victims, epoch)
            if not leaves:
                return []
            events.append(CapacityEvent(
                kind="autoscale",
                epoch=epoch,
                nodes=leaves[0].nodes,
                reason=reason,
                details=(
                    ("action", "shrink"),
                    ("pool_size", len(self._instances)),
                ),
            ))
            events.extend(leaves)
        return events

    def poll(self, epoch: int) -> List[CapacityEvent]:
        """Advance the two-phase preemption lifecycle to ``epoch``.

        Reclaims due this epoch fire first (their warnings are already
        on the log), then fresh warnings are drawn — so a warning's
        evacuation window is a real window even when
        ``preemption_warning_epochs`` is 0 (warning and reclaim then
        land in the same poll, reclaim event after warning event).
        """
        if self.churn is None or self.churn.config.preemption_rate <= 0.0:
            return []
        events: List[CapacityEvent] = []
        reclaimed = sorted(
            n for n, inst in self._instances.items()
            if inst.state == DRAINING
            and inst.reclaim_epoch is not None
            and inst.reclaim_epoch <= epoch
        )
        for node_id in reclaimed:
            del self._instances[node_id]
        if reclaimed:
            events.append(CapacityEvent(
                kind="preempt_reclaim",
                epoch=epoch,
                nodes=tuple(reclaimed),
                node_class=SPOT,
                details=(("pool_size", len(self._instances)),),
            ))
        window = self.churn.config.preemption_warning_epochs
        warned = []
        for node_id in sorted(self._instances):
            instance = self._instances[node_id]
            if instance.node_class != SPOT or instance.state != LIVE:
                continue
            if self.churn.preempts(node_id, epoch):
                instance.state = DRAINING
                instance.reclaim_epoch = epoch + window
                warned.append(node_id)
        if warned:
            events.append(CapacityEvent(
                kind="preempt_warning",
                epoch=epoch,
                nodes=tuple(warned),
                node_class=SPOT,
                details=(("reclaim_epoch", epoch + window),),
            ))
            if window == 0:
                # Zero-window plans reclaim immediately: flush the
                # instances this same boundary so the service never
                # schedules onto them.
                for node_id in warned:
                    del self._instances[node_id]
                events.append(CapacityEvent(
                    kind="preempt_reclaim",
                    epoch=epoch,
                    nodes=tuple(warned),
                    node_class=SPOT,
                    details=(("pool_size", len(self._instances)),),
                ))
        return events

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        # The churn plan and autoscaler are construction-time
        # configuration (rebuilt from the blueprint/CLI on resume);
        # only their identity is recorded, to catch mismatched resumes.
        state["churn_signature"] = (
            None if self.churn is None else self.churn.signature()
        )
        return state

    def load_state(self, state: Dict[str, object]) -> None:
        recorded = state.get("churn_signature")
        current = None if self.churn is None else self.churn.signature()
        if recorded != current:
            raise ConfigurationError(
                "checkpoint was captured under a different churn plan; "
                "resume with the same --churn configuration"
            )
        super().load_state(state)
