"""Capacity providers: elastic pools, spot preemption, autoscaling.

See :mod:`repro.providers.base` for the model.  Importing this package
populates the provider registry (``static``, ``elastic``, ``ec2``), so
``make_provider(name, ...)`` works without importing the backends
individually.
"""

from repro.providers.autoscaler import AutoscalerConfig
from repro.providers.base import (
    DRAINING,
    DURABLE,
    LIVE,
    SPOT,
    CapacityEvent,
    CapacityProvider,
    ProviderInstance,
    make_provider,
    provider_names,
    register_provider,
)
from repro.providers.ec2 import (
    EC2_COUNTS,
    EC2_INSTANCE_VCPUS,
    EC2_NUM_INSTANCES,
    EC2_POLICY_SAMPLES,
    EC2_WORKLOADS,
    EC2Provider,
    ec2_cluster_spec,
    ec2_counts,
    make_ec2_runner,
)
from repro.providers.elastic import ElasticProvider
from repro.providers.static import StaticProvider

__all__ = [
    "AutoscalerConfig",
    "CapacityEvent",
    "CapacityProvider",
    "DRAINING",
    "DURABLE",
    "EC2Provider",
    "EC2_COUNTS",
    "EC2_INSTANCE_VCPUS",
    "EC2_NUM_INSTANCES",
    "EC2_POLICY_SAMPLES",
    "EC2_WORKLOADS",
    "ElasticProvider",
    "LIVE",
    "ProviderInstance",
    "SPOT",
    "StaticProvider",
    "ec2_cluster_spec",
    "ec2_counts",
    "make_ec2_runner",
    "make_provider",
    "provider_names",
    "register_provider",
]
