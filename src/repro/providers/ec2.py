"""Amazon EC2 validation environment (Section 6), as a provider.

The paper re-validates the modeling method on 32 ``c4.2xlarge``
instances: each VM runs the application on 4 vCPUs and reserves the
other 4 for bubble programs (or a co-running application).  Two things
distinguish EC2 from the private testbed and are reproduced here:

* **unmeasured tenant interference** — other customers' VMs share the
  physical hosts, adding background pressure nobody can observe or
  control (the :data:`~repro.sim.noise.EC2_NOISE` profile's ambient
  term, redrawn per run to model silent VM relocation); and
* **scale** — 32 "nodes" (VMs) instead of 8, with the sparse
  interfering-VM counts of Figure 12: 0, 1, 2, 4, 8, 16, 24, 32.

This module used to live at ``repro.ec2.environment`` as a standalone
stub; it now also registers the pool as the ``ec2`` capacity provider
(a fixed, fully durable 32-instance
:class:`~repro.providers.static.StaticProvider` — the paper's
validation never resizes), so ``make_provider("ec2")`` stands up the
same environment the Section 6 experiments measure against.  The old
import path keeps working through a warn-once shim.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.providers.base import register_provider
from repro.providers.static import StaticProvider
from repro.sim.noise import EC2_NOISE
from repro.sim.runner import ClusterRunner

#: Interfering-VM counts profiled on EC2 (Figure 12's x axis).
EC2_COUNTS: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 24, 32)

#: The four short-running workloads the paper validates on EC2.
EC2_WORKLOADS: Tuple[str, ...] = ("M.milc", "M.Gems", "M.zeus", "M.lu")

#: Heterogeneous configurations sampled for policy selection on EC2.
EC2_POLICY_SAMPLES: int = 100

#: c4.2xlarge: 8 vCPUs, 15 GiB.
EC2_INSTANCE_VCPUS: int = 8
EC2_NUM_INSTANCES: int = 32


def ec2_cluster_spec() -> ClusterSpec:
    """Cluster spec treating each EC2 VM as a node.

    Each VM carries the application (4 vCPUs, one unit) plus at most
    one co-runner/bubble (the other 4 vCPUs) — the paper's forced
    intra-VM co-location, hence 2 workloads per "node".
    """
    return ClusterSpec(
        num_nodes=EC2_NUM_INSTANCES,
        cores_per_node=EC2_INSTANCE_VCPUS,
        memory_gb_per_node=15,
        max_workloads_per_node=2,
    )


def make_ec2_runner(*, base_seed: int = 26016) -> ClusterRunner:
    """A measurement environment configured like the EC2 deployment."""
    return ClusterRunner(ec2_cluster_spec(), noise=EC2_NOISE, base_seed=base_seed)


def ec2_counts() -> List[float]:
    """Figure 12's count axis as floats (matrix column values)."""
    return [float(count) for count in EC2_COUNTS]


@register_provider("ec2")
class EC2Provider(StaticProvider):
    """The Section 6 validation pool as a (fixed) capacity provider."""

    name = "ec2"

    def __init__(self) -> None:
        super().__init__(EC2_NUM_INSTANCES)
