"""Deterministic autoscaling policy for elastic pools.

The autoscaler is a pure function of the service's observable pressure
at an epoch boundary: the admission queue depth and the predicted
worst mission-critical QoS margin (``bound - predicted``, minimized
over every MC tenant).  Both signals say the same thing from different
sides — work is waiting, or the resident mix is predicted too close to
its bounds — and either triggers growth.  Shrink is the conservative
inverse: only when the queue is empty does the pool release *idle*
spot instances (never durable ones, never instances hosting units), so
scaling down can never evict work or touch a mission-critical tenant.

No randomness anywhere: the same (queue depth, margin, idle set)
always produces the same decision, which is what lets a resumed day
replay its autoscale events byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AutoscalerConfig:
    """Scaling thresholds of an elastic pool.

    Parameters
    ----------
    grow_queue_depth:
        Queue depth at (or above) which the pool grows.
    margin_floor:
        Predicted worst MC QoS margin below which the pool grows —
        capacity pressure is added *before* the bound is breached.
    grow_step:
        Spot instances launched per growth decision.
    shrink_step:
        Idle spot instances released per shrink decision.
    min_nodes:
        Pool floor the autoscaler never shrinks below.
    """

    grow_queue_depth: int = 2
    margin_floor: float = 0.05
    grow_step: int = 2
    shrink_step: int = 1
    min_nodes: int = 1

    def __post_init__(self) -> None:
        if self.grow_queue_depth < 1:
            raise ConfigurationError("grow_queue_depth must be positive")
        if self.grow_step < 1 or self.shrink_step < 1:
            raise ConfigurationError("scaling steps must be positive")
        if self.min_nodes < 1:
            raise ConfigurationError("min_nodes must be positive")


def decide(
    config: AutoscalerConfig,
    *,
    queue_depth: int,
    qos_margin: Optional[float],
    live_count: int,
    max_nodes: int,
    idle_spot: List[int],
) -> Tuple[str, int, List[int], str]:
    """One boundary's scaling decision.

    Returns ``(action, count, nodes, reason)`` where ``action`` is
    ``"grow"``, ``"shrink"``, or ``"hold"``; ``nodes`` names the
    instances a shrink releases (highest ids first — the most recently
    minted elastic capacity goes back first).
    """
    pressure = queue_depth >= config.grow_queue_depth
    squeezed = qos_margin is not None and qos_margin < config.margin_floor
    if pressure or squeezed:
        room = max_nodes - live_count
        count = min(config.grow_step, room)
        if count > 0:
            reason = "queue-depth" if pressure else "qos-margin"
            return ("grow", count, [], reason)
        return ("hold", 0, [], "at-ceiling")
    if queue_depth == 0 and idle_spot:
        releasable = max(0, live_count - config.min_nodes)
        count = min(config.shrink_step, len(idle_spot), releasable)
        if count > 0:
            victims = sorted(idle_spot, reverse=True)[:count]
            return ("shrink", count, sorted(victims), "idle")
    return ("hold", 0, [], "steady")
