"""The fixed-capacity provider (today's behaviour, made explicit).

``StaticProvider`` is the identity element of the provider layer: the
whole pool is durable, live from epoch 0, and never changes.  A
service run with ``--provider static`` therefore makes exactly the
same decisions — and produces byte-identical event logs, snapshots,
and traces — as one run with no provider at all, which is the
acceptance gate the churn work rides behind.
"""

from __future__ import annotations

from repro.providers.base import (
    DURABLE,
    CapacityProvider,
    ProviderInstance,
    register_provider,
)


@register_provider("static")
class StaticProvider(CapacityProvider):
    """A fixed, fully durable pool of ``num_nodes`` instances."""

    name = "static"

    @property
    def elastic(self) -> bool:
        return False

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        self._instances = {
            node_id: ProviderInstance(node_id=node_id, node_class=DURABLE)
            for node_id in range(num_nodes)
        }

    # A static pool ignores growth requests rather than erroring: the
    # autoscaler path is simply absent, and poll never drains anything,
    # so step() is always empty and the service's capacity phase is a
    # no-op (no events, no log entries, no trace spans beyond the
    # phase marker).
    def grow(self, count, epoch, *, node_class=DURABLE):
        return []

    def shrink(self, nodes, epoch):
        return []
