"""Capacity providers: the elastic node pool under the service.

The paper's consolidation story assumes a fixed pool of hosts; a
production fleet does not get that luxury — capacity arrives, leaves,
and is *reclaimed* mid-day.  A :class:`CapacityProvider` owns the
synthetic "instance" inventory the consolidation service schedules
onto: which node ids are live, which are durable versus spot, which
are draining toward a preemption reclaim.  The service's runner is
built at the provider's ``max_nodes`` ceiling, so every node id the
provider can ever mint has a physical identity; the provider decides
which subset is *schedulable* at each epoch boundary.

Determinism contract: every capacity decision is a pure function of
the provider's serialized state, the epoch number, and a seeded
:class:`~repro.faults.plan.FaultPlan` (the ``preempt`` family) —
never of wall clock, query order, or measurement draws.  Provider
state round-trips through :meth:`CapacityProvider.state_dict` /
:meth:`CapacityProvider.load_state`, which is how
:class:`~repro.service.checkpoint.ServiceCheckpoint` makes a resize or
an in-flight preemption warning survive ``--resume`` byte-identically.

Node classes:

* **durable** — never preempted; the only class mission-critical
  tenants may be admitted onto.
* **spot** — cheap elastic capacity; may receive a seeded preemption
  *warning* (the instance keeps running but stops accepting work) and
  is *reclaimed* a fixed number of epochs later (resident batch jobs
  are evicted and requeued, never dropped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Node classes a provider instance can carry.
DURABLE = "durable"
SPOT = "spot"

#: Instance lifecycle states.
LIVE = "live"
DRAINING = "draining"

NODE_CLASSES = (DURABLE, SPOT)
INSTANCE_STATES = (LIVE, DRAINING)


@dataclass
class ProviderInstance:
    """One synthetic capacity instance (a schedulable node identity).

    ``reclaim_epoch`` is set while the instance is ``draining``: the
    epoch at which the provider takes the node back.  A reclaimed
    instance leaves the inventory entirely (its node id may later be
    reused by a fresh grow — a reused id is a *new* instance).
    """

    node_id: int
    node_class: str = DURABLE
    launched_epoch: int = 0
    state: str = LIVE
    reclaim_epoch: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "node_id": self.node_id,
            "node_class": self.node_class,
            "launched_epoch": self.launched_epoch,
            "state": self.state,
        }
        if self.reclaim_epoch is not None:
            entry["reclaim_epoch"] = self.reclaim_epoch
        return entry

    @classmethod
    def from_dict(cls, entry: Dict[str, object]) -> "ProviderInstance":
        try:
            instance = cls(
                node_id=int(entry["node_id"]),
                node_class=str(entry["node_class"]),
                launched_epoch=int(entry["launched_epoch"]),
                state=str(entry["state"]),
                reclaim_epoch=(
                    None if entry.get("reclaim_epoch") is None
                    else int(entry["reclaim_epoch"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed provider instance: {entry!r}"
            ) from exc
        if instance.node_class not in NODE_CLASSES:
            raise ConfigurationError(
                f"unknown node class {instance.node_class!r}"
            )
        if instance.state not in INSTANCE_STATES:
            raise ConfigurationError(
                f"unknown instance state {instance.state!r}"
            )
        return instance


@dataclass(frozen=True)
class CapacityEvent:
    """One capacity change the provider reports at an epoch boundary.

    ``kind`` is one of ``autoscale``, ``node_join``, ``node_leave``,
    ``preempt_warning``, ``preempt_reclaim`` — the service maps each to
    its event-log entry of the same name.  ``nodes`` lists the node
    ids involved, sorted.
    """

    kind: str
    epoch: int
    nodes: Tuple[int, ...] = ()
    node_class: Optional[str] = None
    reason: Optional[str] = None
    #: Extra payload merged into the logged event (e.g. the autoscale
    #: action and resulting pool size).
    details: Tuple[Tuple[str, object], ...] = ()


class CapacityProvider:
    """Base class: a fixed-or-elastic pool of provider instances.

    Subclasses own the inventory (``self._instances``, keyed by node
    id) and may override :meth:`autoscale` and :meth:`poll` — the two
    halves of :meth:`step`, which the service calls once per epoch
    *before* anything else happens, so the epoch's admission and
    rescheduling see a consistent capacity picture.
    """

    #: Registry name (set by subclasses).
    name = "base"

    def __init__(self, max_nodes: int) -> None:
        if max_nodes <= 0:
            raise ConfigurationError("max_nodes must be positive")
        self._max_nodes = max_nodes
        self._instances: Dict[int, ProviderInstance] = {}

    # ------------------------------------------------------------------
    # Inventory views (all sorted: iteration order is part of the
    # determinism contract)
    # ------------------------------------------------------------------
    @property
    def max_nodes(self) -> int:
        """Pool ceiling — the runner must be built at least this big."""
        return self._max_nodes

    @property
    def elastic(self) -> bool:
        """Whether this pool can ever change shape.

        The service keys its additive output on this: a non-elastic
        (static) provider adds **no** events, snapshot fields, spans,
        or counters, so a ``--provider static`` day is byte-identical
        to a day run with no provider at all.
        """
        return True

    def instances(self) -> List[ProviderInstance]:
        """The live inventory, sorted by node id."""
        return [self._instances[n] for n in sorted(self._instances)]

    def live_nodes(self) -> List[int]:
        """Node ids still hosting work (live *and* draining), sorted."""
        return sorted(self._instances)

    def schedulable_nodes(self) -> List[int]:
        """Node ids accepting *new* work (live, not draining), sorted."""
        return sorted(
            n for n, inst in self._instances.items() if inst.state == LIVE
        )

    def durable_nodes(self) -> List[int]:
        """Durable (never-preempted) node ids, sorted."""
        return sorted(
            n for n, inst in self._instances.items()
            if inst.node_class == DURABLE
        )

    def is_spot(self, node_id: int) -> bool:
        """Whether ``node_id`` is a spot instance (False if unknown)."""
        instance = self._instances.get(node_id)
        return instance is not None and instance.node_class == SPOT

    def is_draining(self, node_id: int) -> bool:
        """Whether ``node_id`` has a pending preemption reclaim."""
        instance = self._instances.get(node_id)
        return instance is not None and instance.state == DRAINING

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def grow(
        self, count: int, epoch: int, *, node_class: str = SPOT
    ) -> List[CapacityEvent]:
        """Launch ``count`` fresh instances (bounded by ``max_nodes``).

        New instances take the lowest free node ids, so growth is
        deterministic.  Returns the ``node_join`` event (empty list
        when the pool is already at its ceiling).
        """
        if count <= 0:
            return []
        if node_class not in NODE_CLASSES:
            raise ConfigurationError(f"unknown node class {node_class!r}")
        free = [
            n for n in range(self._max_nodes) if n not in self._instances
        ]
        taken = free[:count]
        if not taken:
            return []
        for node_id in taken:
            self._instances[node_id] = ProviderInstance(
                node_id=node_id,
                node_class=node_class,
                launched_epoch=epoch,
            )
        return [CapacityEvent(
            kind="node_join",
            epoch=epoch,
            nodes=tuple(taken),
            node_class=node_class,
            details=(("pool_size", len(self._instances)),),
        )]

    def shrink(self, nodes: List[int], epoch: int) -> List[CapacityEvent]:
        """Release the given (idle) instances back to the provider.

        The caller — the autoscaler path — is responsible for only
        releasing nodes with no resident units.  Returns the
        ``node_leave`` event.
        """
        released = sorted(n for n in nodes if n in self._instances)
        if not released:
            return []
        for node_id in released:
            del self._instances[node_id]
        return [CapacityEvent(
            kind="node_leave",
            epoch=epoch,
            nodes=tuple(released),
            reason="autoscale",
            details=(("pool_size", len(self._instances)),),
        )]

    def autoscale(
        self,
        epoch: int,
        *,
        queue_depth: int,
        qos_margin: Optional[float],
        idle_nodes: List[int],
    ) -> List[CapacityEvent]:
        """Scaling decision for this boundary (default: none)."""
        return []

    def poll(self, epoch: int) -> List[CapacityEvent]:
        """Preemption lifecycle for this boundary (default: none)."""
        return []

    def step(
        self,
        epoch: int,
        *,
        queue_depth: int = 0,
        qos_margin: Optional[float] = None,
        idle_nodes: Optional[List[int]] = None,
    ) -> List[CapacityEvent]:
        """One epoch boundary's worth of capacity changes, in order.

        Autoscaling first (driven by the *previous* boundary's queue
        depth and predicted mission-critical QoS margin), then the
        seeded preemption lifecycle.  The returned events are already
        ordered the way the service logs them.
        """
        events = self.autoscale(
            epoch,
            queue_depth=queue_depth,
            qos_margin=qos_margin,
            idle_nodes=list(idle_nodes or []),
        )
        events.extend(self.poll(epoch))
        return events

    # ------------------------------------------------------------------
    # Serialization (the checkpoint contract)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-able provider state (everything non-derivable)."""
        return {
            "provider": self.name,
            "max_nodes": self._max_nodes,
            "instances": [inst.to_dict() for inst in self.instances()],
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Install a :meth:`state_dict` capture into this provider.

        The provider must have been constructed with the same
        configuration as the captured one (same registry name and
        ceiling) — the checkpoint carries state, not construction.
        """
        try:
            name = str(state["provider"])
            max_nodes = int(state["max_nodes"])
            entries = list(state["instances"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError("malformed provider state") from exc
        if name != self.name:
            raise ConfigurationError(
                f"checkpoint provider {name!r} does not match this "
                f"provider {self.name!r}"
            )
        if max_nodes != self._max_nodes:
            raise ConfigurationError(
                f"checkpoint max_nodes {max_nodes} does not match this "
                f"provider's {self._max_nodes}"
            )
        instances = [ProviderInstance.from_dict(entry) for entry in entries]
        self._instances = {inst.node_id: inst for inst in instances}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[..., CapacityProvider]] = {}


def register_provider(name: str):
    """Class decorator adding a provider to the registry."""
    def decorate(factory):
        _REGISTRY[name] = factory
        return factory
    return decorate


def provider_names() -> List[str]:
    """Registered provider names, sorted."""
    return sorted(_REGISTRY)


def make_provider(name: str, **kwargs) -> CapacityProvider:
    """Instantiate a registered provider by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown provider {name!r}; known: {', '.join(provider_names())}"
        ) from None
    return factory(**kwargs)
