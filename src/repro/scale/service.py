"""The sharded consolidation service: cells under a two-level coordinator.

:class:`ShardedConsolidationService` is the scale layer's drop-in
counterpart to the flat
:class:`~repro.service.loop.ConsolidationService`: the same seeded
traffic day, the same byte-stable event log and snapshots, but the
cluster is partitioned into cells (:mod:`repro.scale.sharding`) that
each run the flat epoch body independently — optionally fanned out
over worker processes via :func:`repro.parallel.fan_out`.  Above the
cells sit the two global tiers:

* the :class:`~repro.scale.router.HeadroomRouter` assigns each arrival
  to the cell with the most predicted QoS headroom, and
* the :class:`~repro.scale.coordinator.GlobalCoordinator` watches
  per-cell margins after every epoch and moves a collapsing cell's
  worst tenant to a safer cell (``cell_migrate`` events), gated like
  intra-cell rescheduling.

**The 1-cell contract.**  With one cell there is nothing to route or
coordinate, so the sharded service reduces *exactly* to the flat one:
the single cell is the identity shard, its service runs with
``cell_id=None`` and the flat seed, router scoring and coordinator
margins are never computed, and merged events carry no ``cell`` field.
``repro serve --cells 1`` therefore replays the flat ``repro serve``
day byte for byte — the equivalence the scale tests pin down.

With multiple cells, every merged event carries a ``cell`` payload
field, every span recorded inside a cell's epoch carries a ``cell``
attribute, and the per-epoch global snapshot aggregates the cells
(plus an additive per-cell ``cells`` section).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util import stable_seed
from repro.core.online import OnlineModel
from repro.errors import ServiceError
from repro.obs import recorder as _obs
from repro.parallel import fan_out
from repro.scale.coordinator import CoordinatorConfig, GlobalCoordinator
from repro.scale.router import HeadroomRouter, free_slot_count
from repro.scale.sharding import CellSpec, shard_cluster
from repro.service.events import EventLog
from repro.service.jobs import Job
from repro.service.loop import ConsolidationService, ServiceConfig
from repro.service.telemetry import MetricsSnapshot
from repro.sim.runner import ClusterRunner


class RoutedStream:
    """A per-cell arrival feed the router fills epoch by epoch.

    Cells consume it through the ordinary ``arrivals(epoch)`` stream
    protocol, so the flat epoch body needs no routing awareness.  The
    router must :meth:`push` an epoch's (possibly empty) job list
    before the cell runs that epoch.
    """

    def __init__(self) -> None:
        self._by_epoch: Dict[int, List[Job]] = {}

    def push(self, epoch: int, jobs: Sequence[Job]) -> None:
        """Set the jobs routed to this cell for ``epoch``."""
        self._by_epoch[epoch] = list(jobs)

    def arrivals(self, epoch: int) -> List[Job]:
        """The jobs routed here for ``epoch`` (empty if none)."""
        return list(self._by_epoch.get(epoch, ()))


@dataclass
class Cell:
    """One cell: its shard, flat service, and routed feed.

    ``consumed`` tracks how many of the cell log's events have been
    merged into the global log (merging is incremental per epoch).
    """

    cell_id: int
    shard: CellSpec
    service: ConsolidationService
    stream: RoutedStream
    consumed: int = field(default=0)


def _cell_epoch(item: Tuple[ConsolidationService, int]) -> ConsolidationService:
    """Fan-out worker body: run one cell's epoch, ship the service back."""
    service, epoch = item
    service.run_epoch(epoch)
    return service


class ShardedConsolidationService:
    """Cells + router + coordinator behind the flat service's interface.

    Exposes the surface ``repro serve`` consumes — ``run`` /
    ``snapshots`` / ``log`` / ``epochs_run`` / ``checkpoint`` /
    ``restore`` — so the CLI treats flat and sharded days uniformly.

    Parameters
    ----------
    cells:
        The cells, ordered by ``cell_id`` (see
        :func:`build_sharded_service`).
    stream:
        The *global* arrival source; the router distributes its jobs
        into the cells' :class:`RoutedStream` feeds.
    router / coordinator:
        The two global tiers (defaults are constructed when omitted).
    seed:
        Root seed, recorded in checkpoints for resume validation.
    checkpoint_path:
        When set, a :class:`~repro.scale.checkpoint.ScaleCheckpoint`
        is written after every epoch.
    cell_workers:
        Worker processes the per-cell epochs fan out over (0 or 1 =
        serial, the deterministic-trace default; results are identical
        either way, but worker-side spans are lost to the trace).
    """

    def __init__(
        self,
        cells: Sequence[Cell],
        stream,
        *,
        router: Optional[HeadroomRouter] = None,
        coordinator: Optional[GlobalCoordinator] = None,
        seed: int = 0,
        checkpoint_path: Optional[str] = None,
        cell_workers: int = 0,
    ) -> None:
        if not cells:
            raise ServiceError("need at least one cell")
        if [cell.cell_id for cell in cells] != list(range(len(cells))):
            raise ServiceError("cells must be dense and ordered by cell_id")
        self.cells = list(cells)
        self.stream = stream
        self.router = router or HeadroomRouter()
        self.coordinator = coordinator or GlobalCoordinator()
        self.seed = seed
        self.checkpoint_path = checkpoint_path
        self.cell_workers = cell_workers
        self.log = EventLog()
        self.snapshots: List[MetricsSnapshot] = []
        self._epochs_run = 0
        self._migrations_in = {cell.cell_id: 0 for cell in cells}
        self._migrations_out = {cell.cell_id: 0 for cell in cells}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Number of cells."""
        return len(self.cells)

    @property
    def epochs_run(self) -> int:
        """Epochs the sharded service has completed."""
        return self._epochs_run

    @property
    def cell_migrations_total(self) -> int:
        """Cross-cell moves executed so far."""
        return sum(self._migrations_in.values())

    def cell(self, cell_id: int) -> Cell:
        """The cell with ``cell_id``."""
        if not 0 <= cell_id < len(self.cells):
            raise ServiceError(f"no cell {cell_id}")
        return self.cells[cell_id]

    # ------------------------------------------------------------------
    # The sharded epoch
    # ------------------------------------------------------------------
    def run(self, epochs: int) -> List[MetricsSnapshot]:
        """Advance the sharded day by ``epochs`` epochs."""
        if epochs <= 0:
            raise ServiceError("epochs must be positive")
        return [
            self.run_epoch(epoch)
            for epoch in range(self._epochs_run, self._epochs_run + epochs)
        ]

    def run_epoch(self, epoch: int) -> MetricsSnapshot:
        """Route, run every cell, rebalance, snapshot — one epoch."""
        if epoch != self._epochs_run:
            raise ServiceError(
                f"epoch {epoch} is not next (service has run "
                f"{self._epochs_run})"
            )
        multi = len(self.cells) > 1
        with _obs.RECORDER.span(
            "scale.epoch", epoch=epoch, cells=len(self.cells)
        ) as span:
            self._route(epoch)
            self._run_cells(epoch)
            self._merge_cell_events()
            moves: List[Dict[str, object]] = []
            if multi:
                with _obs.RECORDER.span("scale.rebalance", epoch=epoch):
                    moves = self.coordinator.rebalance(
                        self.cells, epoch, self.log, self.router
                    )
                for move in moves:
                    self._migrations_out[move["from_cell"]] += 1
                    self._migrations_in[move["to_cell"]] += 1
            snapshot = self._snapshot(epoch)
            _obs.RECORDER.count("scale.epochs")
            span.set(
                running=snapshot.running_jobs,
                queued=snapshot.queued_jobs,
                cell_migrations=len(moves),
            )
        self.snapshots.append(snapshot)
        self._epochs_run = epoch + 1
        if self.checkpoint_path is not None:
            self.checkpoint().save(self.checkpoint_path)
        return snapshot

    def _route(self, epoch: int) -> None:
        """Distribute this epoch's arrivals into the cells' feeds.

        Routing sees the placements left by the *previous* epoch (the
        operationally honest view: the router cannot know which
        tenants will depart this epoch).  With one cell the router is
        bypassed entirely — part of the 1-cell flat contract.
        """
        arrivals = self.stream.arrivals(epoch)
        if len(self.cells) == 1:
            self.cells[0].stream.push(epoch, arrivals)
            return
        with _obs.RECORDER.span(
            "scale.route", epoch=epoch, arrivals=len(arrivals)
        ):
            queue_room = {
                cell.cell_id: max(
                    0,
                    cell.service.config.max_queue_depth
                    - cell.service.queue_depth,
                )
                for cell in self.cells
            }
            assignments = self.router.route_many(
                self.cells, arrivals, queue_room=queue_room
            )
            buckets: Dict[int, List[Job]] = {
                cell.cell_id: [] for cell in self.cells
            }
            for job in arrivals:
                buckets[assignments[job.job_id]].append(job)
            for cell in self.cells:
                cell.stream.push(epoch, buckets[cell.cell_id])

    def _run_cells(self, epoch: int) -> None:
        """Run every cell's epoch body, serially or fanned out.

        Cells are independent within an epoch, so parallel and serial
        execution produce identical state; ``fan_out`` falls back to
        serial when pickling fails, preserving determinism either way.
        Fanned-out cells record into their workers' (null) recorders,
        so traces of parallel days only carry parent-side spans.
        """
        if self.cell_workers and self.cell_workers > 1 and len(self.cells) > 1:
            returned = fan_out(
                _cell_epoch,
                [(cell.service, epoch) for cell in self.cells],
                max_workers=self.cell_workers,
            )
            for cell, service in zip(self.cells, returned):
                # The returned service is a pickled copy holding its own
                # RoutedStream; re-link it to the cell's feed so the
                # router's future pushes stay visible.
                service.stream = cell.stream
                cell.service = service
            return
        for cell in self.cells:
            cell.service.run_epoch(epoch)

    def _merge_cell_events(self) -> None:
        """Append each cell's fresh events to the global log, in cell order.

        Multi-cell merges stamp a ``cell`` field into every payload;
        the 1-cell merge re-appends the flat events verbatim, so the
        global log's bytes equal the flat service's.
        """
        multi = len(self.cells) > 1
        for cell in self.cells:
            for event in cell.service.log.since(cell.consumed):
                payload = dict(event.payload)
                if multi:
                    payload["cell"] = cell.cell_id
                self.log.append(event.kind, event.epoch, **payload)
            cell.consumed = len(cell.service.log)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _snapshot(self, epoch: int) -> MetricsSnapshot:
        cell_snaps = [cell.service.snapshots[-1] for cell in self.cells]
        if len(self.cells) == 1:
            # The flat snapshot, verbatim (no cells section): the
            # 1-cell day must serialize byte-identically to the flat
            # service's.
            return cell_snaps[0]
        slots = occupied = 0
        for cell in self.cells:
            # Live node count == spec.num_nodes for fixed-pool cells;
            # elastic cells contribute their current pool size.
            slots += (
                cell.service.live_node_count()
                * cell.service.admission.unit_slots_per_node
            )
            occupied += sum(job.num_units for job in cell.service.tenants)
        observed: set = set()
        workloads: set = set()
        for cell in self.cells:
            staleness = cell.service.model.staleness_report()
            observed |= {w for w, count, _, _ in staleness if count > 0}
            workloads |= set(cell.service.model.workloads)
        rows = []
        for cell, snap in zip(self.cells, cell_snaps):
            margin = self.coordinator.worst_margin(cell)
            rows.append({
                "cell": cell.cell_id,
                "nodes": cell.shard.num_nodes,
                "running_jobs": snap.running_jobs,
                "queued_jobs": snap.queued_jobs,
                "free_slots": free_slot_count(cell),
                "utilization": round(cell.service.utilization(), 6),
                "worst_qos_margin": (
                    None if margin is None else round(margin, 6)
                ),
                "migrated_units_total": snap.migrated_units_total,
                "migrations_in_total": self._migrations_in[cell.cell_id],
                "migrations_out_total": self._migrations_out[cell.cell_id],
            })
        return MetricsSnapshot(
            epoch=epoch,
            running_jobs=sum(s.running_jobs for s in cell_snaps),
            queued_jobs=sum(s.queued_jobs for s in cell_snaps),
            utilization=occupied / slots if slots else 0.0,
            admitted_total=sum(s.admitted_total for s in cell_snaps),
            rejected_total=sum(s.rejected_total for s in cell_snaps),
            completed_total=sum(s.completed_total for s in cell_snaps),
            migration_epochs_total=sum(
                s.migration_epochs_total for s in cell_snaps
            ),
            migrated_units_total=sum(
                s.migrated_units_total for s in cell_snaps
            ),
            qos_checks_total=sum(s.qos_checks_total for s in cell_snaps),
            qos_violations_total=sum(
                s.qos_violations_total for s in cell_snaps
            ),
            model_observations=sum(s.model_observations for s in cell_snaps),
            unobserved_workloads=len(workloads - observed),
            cells=tuple(rows),
        )

    # ------------------------------------------------------------------
    # Crash safety
    # ------------------------------------------------------------------
    def checkpoint(self) -> "ScaleCheckpoint":
        """Capture the current epoch boundary across every cell."""
        from repro.scale.checkpoint import ScaleCheckpoint

        return ScaleCheckpoint.capture(self)

    def restore(
        self,
        checkpoint: "ScaleCheckpoint",
        *,
        log: Optional[EventLog] = None,
    ) -> None:
        """Resume a sharded day from a checkpoint (see the flat contract).

        Same semantics as
        :meth:`repro.service.loop.ConsolidationService.restore`: the
        service must be freshly constructed from the same seed and
        topology; ``log`` is the recovered *global* event log, adopted
        and truncated to the checkpoint's length.
        """
        if self._epochs_run or len(self.log):
            raise ServiceError(
                "restore() requires a freshly constructed service"
            )
        checkpoint.restore(self)
        if log is None:
            self.log = EventLog(start_seq=checkpoint.log_length)
        else:
            log.validate_tail(checkpoint.log_length, checkpoint.epoch)
            log.truncate(checkpoint.log_length)
            self.log = log


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def build_sharded_service(
    model,
    cluster,
    n_cells: int,
    stream,
    *,
    seed: int = 0,
    config: Optional[ServiceConfig] = None,
    router: Optional[HeadroomRouter] = None,
    coordinator: Optional[GlobalCoordinator] = None,
    coordinator_config: Optional[CoordinatorConfig] = None,
    checkpoint_path: Optional[str] = None,
    cell_workers: int = 0,
    runner_factory=None,
    degraded_workloads: Optional[Sequence[str]] = None,
    provider_factory=None,
) -> ShardedConsolidationService:
    """Shard a cluster and stand up one flat service per cell.

    Parameters
    ----------
    model:
        The profiled *base* :class:`~repro.core.model.InterferenceModel`.
        Each cell wraps it in its own
        :class:`~repro.core.online.OnlineModel`, so cells learn
        corrections from their own measurements independently (passing
        an ``OnlineModel`` for a multi-cell deployment is rejected —
        shared corrections would entangle the cells).
    cluster:
        :class:`~repro.cluster.cluster.Cluster` or
        :class:`~repro.cluster.cluster.ClusterSpec` to shard.
    n_cells:
        Cell count (1 reduces to the flat service, byte for byte).
    stream:
        Global arrival source (``arrivals(epoch)``).
    seed:
        Root seed.  The 1-cell service runs the flat seed verbatim;
        multi-cell cells derive ``stable_seed(seed, "cell", cell_id)``
        so their searches and measurements are independent streams.
    runner_factory:
        ``f(shard, cell_seed) -> ClusterRunner`` building each cell's
        measurement environment; defaults to a
        :class:`~repro.sim.runner.ClusterRunner` over the shard's spec.
    degraded_workloads:
        Workloads already known degraded (e.g. from profiling-time
        fallbacks); seeded into every cell runner's faulted set so
        admission stays conservative about them.
    provider_factory:
        Optional ``f(shard, cell_seed) -> CapacityProvider | None``
        attaching a capacity provider per cell.  An elastic cell's
        runner must be built at the provider's ``max_nodes`` ceiling
        (pair this with a matching ``runner_factory``); cells whose
        factory returns ``None`` stay fixed-pool.  ``None`` (the
        default) leaves every cell provider-less, byte-identical to
        releases before the provider layer.
    """
    if n_cells > 1 and isinstance(model, OnlineModel):
        raise ServiceError(
            "pass the base model: each cell wraps its own OnlineModel"
        )
    shards = shard_cluster(cluster, n_cells, seed=seed)
    single = n_cells == 1
    cells: List[Cell] = []
    for shard in shards:
        cell_seed = (
            seed if single else stable_seed(seed, "cell", shard.cell_id)
        )
        if runner_factory is None:
            runner = ClusterRunner(shard.spec, base_seed=cell_seed)
        else:
            runner = runner_factory(shard, cell_seed)
        if degraded_workloads:
            runner.faulted_workloads.update(degraded_workloads)
        routed = RoutedStream()
        service = ConsolidationService(
            runner,
            model,
            routed,
            config=config,
            seed=cell_seed,
            cell_id=None if single else shard.cell_id,
            provider=(
                provider_factory(shard, cell_seed)
                if provider_factory is not None
                else None
            ),
        )
        cells.append(Cell(shard.cell_id, shard, service, routed))
    if coordinator is None and coordinator_config is not None:
        coordinator = GlobalCoordinator(coordinator_config)
    return ShardedConsolidationService(
        cells,
        stream,
        router=router,
        coordinator=coordinator,
        seed=seed,
        checkpoint_path=checkpoint_path,
        cell_workers=cell_workers,
    )
