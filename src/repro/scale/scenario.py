"""The seeded 1000-node, 10k-job "traffic day" scenario.

The scale layer's reference workload: 1000 nodes sharded into 20 cells
of 50, a Poisson arrival stream averaging 400 jobs per epoch over 25
epochs (~10,000 jobs), drawing from the same four-application mix as
the flat ``repro serve`` day.  The day is heavily oversubscribed by
design — the cluster holds on the order of 600 concurrent jobs — so
the router, queue bounds, and rejection paths all carry real load.

Per-cell knobs are tightened relative to the flat 8-node defaults so
per-epoch wall time stays bounded at 50-node cells (the
``scale-smoke`` CI job guards it): admission evaluates at most
:data:`SCALE_ADMISSION_CANDIDATES` combinations per decision and the
rescheduling search runs a shorter annealing schedule.  Determinism is
untouched — every knob is part of the seeded configuration.

Model profiling happens once, on the paper's 8-node testbed
environment (profiling cost does not scale with the serving cluster),
and the profiled model is shared by every cell as the static base
under its own online corrections.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.catalog import BATCH_WORKLOADS
from repro.core.builder import build_batch_profiles, build_model
from repro.placement.annealing import AnnealingSchedule
from repro.scale.service import (
    ShardedConsolidationService,
    build_sharded_service,
)
from repro.service.loop import ServiceConfig
from repro.service.stream import StreamConfig, WorkloadStream
from repro.sim.runner import ClusterRunner

#: The 1000-node day's shape.
SCALE_DAY_NODES = 1000
SCALE_DAY_CELLS = 20
SCALE_DAY_EPOCHS = 25
SCALE_DAY_ARRIVAL_RATE = 400.0  # Poisson mean; ~10k jobs over the day
SCALE_DAY_SEED = 2016

#: Application mix (the flat serve day's default).
SCALE_DAY_MIX = ("M.lmps", "M.milc", "H.KM", "S.WC")

#: Per-decision admission-candidate cap at cell scale.
SCALE_ADMISSION_CANDIDATES = 64

#: Per-cell annealing schedule (shorter than the flat default).
SCALE_SCHEDULE = AnnealingSchedule(iterations=300, restarts=1)


def scale_service_config(
    *,
    reschedule_every: int = 1,
    migration_cost: float = 0.02,
) -> ServiceConfig:
    """The per-cell :class:`ServiceConfig` multi-cell days run."""
    return ServiceConfig(
        reschedule_every=reschedule_every,
        migration_cost=migration_cost,
        schedule=SCALE_SCHEDULE,
        admission_candidates=SCALE_ADMISSION_CANDIDATES,
    )


def scale_day_service(
    *,
    seed: int = SCALE_DAY_SEED,
    nodes: int = SCALE_DAY_NODES,
    cells: int = SCALE_DAY_CELLS,
    arrival_rate: float = SCALE_DAY_ARRIVAL_RATE,
    workloads: tuple = SCALE_DAY_MIX,
    policy_samples: int = 10,
    qos_fraction: float = 0.5,
    checkpoint_path: Optional[str] = None,
    cell_workers: int = 0,
    config: Optional[ServiceConfig] = None,
) -> ShardedConsolidationService:
    """Build the seeded 1000-node day's sharded service.

    Profiles the serving model on the paper's 8-node testbed (same
    procedure as ``repro serve``), then shards ``nodes`` nodes into
    ``cells`` cells fed by a Poisson stream of ``arrival_rate`` jobs
    per epoch.  Run it with ``service.run(SCALE_DAY_EPOCHS)``.
    """
    from repro.cluster.cluster import ClusterSpec

    profiling_runner = ClusterRunner(base_seed=seed)
    distributed = [w for w in workloads if w not in BATCH_WORKLOADS]
    batch = [w for w in workloads if w in BATCH_WORKLOADS]
    report = build_model(
        profiling_runner,
        distributed,
        policy_samples=policy_samples,
        seed=seed,
        span=4,
    )
    if batch:
        build_batch_profiles(profiling_runner, report.model, batch, span=4)
    stream = WorkloadStream(
        StreamConfig(
            workloads=tuple(workloads),
            arrival_rate=arrival_rate,
            qos_fraction=qos_fraction,
        ),
        seed=seed,
    )
    return build_sharded_service(
        report.model,
        ClusterSpec(num_nodes=nodes),
        cells,
        stream,
        seed=seed,
        config=config or scale_service_config(),
        checkpoint_path=checkpoint_path,
        cell_workers=cell_workers,
        degraded_workloads=sorted(profiling_runner.faulted_workloads),
    )
