"""The global QoS coordinator: the scale layer's second tier.

Cells run autonomously; the coordinator's only job is to notice when a
cell's predicted QoS margin *collapses* — its worst mission-critical
tenant is predicted outside its bound (or within
``margin_threshold`` of it) — and move exactly that tenant to a cell
that can absorb it.  Cross-cell migration is expensive (the tenancy's
state crosses a cell boundary), so it is gated the same way
:class:`~repro.service.loop.ConsolidationService` gates intra-cell
rescheduling: a move repairing a predicted QoS violation is always
taken, anything else must buy back ``migration_cost`` per moved unit
in predicted total time across both cells.

Everything here is deterministic: collapsed cells are visited in
(worst margin, cell id) order, the victim is the worst-margin tenant
(ties by job id), and destination cells are tried in descending router
headroom (ties toward the lower cell id).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ServiceError
from repro.obs import recorder as _obs
from repro.placement.objectives import (
    predict_placement,
    weighted_total_time,
)
from repro.service.admission import placement_without_job
from repro.service.events import EventLog


@dataclass(frozen=True)
class CoordinatorConfig:
    """Operating knobs of the global coordinator.

    Parameters
    ----------
    margin_threshold:
        A cell is *collapsed* when its worst mission-critical margin
        (``bound - predicted``) falls below this.  The default 0.0
        means "a tenant is predicted to violate its bound"; small
        positive values intervene early.
    migration_cost:
        Predicted-total-time units one moved VM unit must buy back —
        the same gate (and default) as
        :attr:`~repro.service.loop.ServiceConfig.migration_cost`.
    max_migrations_per_epoch:
        Cross-cell moves allowed per epoch, bounding coordinator churn.
    """

    margin_threshold: float = 0.0
    migration_cost: float = 0.02
    max_migrations_per_epoch: int = 2

    def __post_init__(self) -> None:
        if self.migration_cost < 0:
            raise ServiceError("migration_cost must be non-negative")
        if self.max_migrations_per_epoch < 0:
            raise ServiceError("max_migrations_per_epoch must be non-negative")


class GlobalCoordinator:
    """Watches per-cell QoS margins; migrates only on collapse."""

    def __init__(self, config: Optional[CoordinatorConfig] = None) -> None:
        self.config = config or CoordinatorConfig()

    # ------------------------------------------------------------------
    @staticmethod
    def worst_margin(cell) -> Optional[float]:
        """The cell's worst predicted mission-critical margin.

        ``None`` when the cell hosts no mission-critical tenant (an
        empty or best-effort-only cell cannot collapse).
        """
        service = cell.service
        placement = service.placement
        if placement is None:
            return None
        critical = [job for job in service.tenants if job.mission_critical]
        if not critical:
            return None
        predictions = predict_placement(service.model, placement)
        return min(
            job.qos_target - predictions[job.job_id] for job in critical
        )

    # ------------------------------------------------------------------
    def rebalance(
        self,
        cells: Sequence,
        epoch: int,
        log: EventLog,
        router,
    ) -> List[Dict[str, object]]:
        """One epoch's worth of cross-cell intervention.

        Returns one record per executed move (``from_cell``,
        ``to_cell``, ``job``, ``units``); each move is also appended to
        ``log`` as a ``cell_migrate`` event.
        """
        moves: List[Dict[str, object]] = []
        margins = {cell.cell_id: self.worst_margin(cell) for cell in cells}
        collapsed = sorted(
            (
                cell
                for cell in cells
                if margins[cell.cell_id] is not None
                and margins[cell.cell_id] < self.config.margin_threshold
            ),
            key=lambda cell: (margins[cell.cell_id], cell.cell_id),
        )
        for source in collapsed:
            if len(moves) >= self.config.max_migrations_per_epoch:
                break
            move = self._relieve(source, cells, epoch, log, router)
            if move is not None:
                moves.append(move)
        return moves

    # ------------------------------------------------------------------
    def _relieve(
        self, source, cells: Sequence, epoch: int, log: EventLog, router
    ) -> Optional[Dict[str, object]]:
        """Try to move the source cell's worst tenant somewhere safer."""
        service = source.service
        placement = service.placement
        if placement is None:
            return None
        predictions = predict_placement(service.model, placement)
        critical = [job for job in service.tenants if job.mission_critical]
        if not critical:
            return None
        victim = min(
            critical,
            key=lambda job: (job.qos_target - predictions[job.job_id], job.job_id),
        )
        margin = victim.qos_target - predictions[victim.job_id]

        # Source-side accounting for the gate, computed without
        # mutating anything: the placement with the victim evicted.
        constraints = [
            job.qos_constraint() for job in critical if job is not victim
        ]
        violation_before = sum(
            c.violation(predictions)
            for c in (constraints + [victim.qos_constraint()])
        )
        total_before = weighted_total_time(predictions, placement)
        after = placement_without_job(placement, victim.job_id)
        if after is None:
            after_predictions: Dict[str, float] = {}
            total_after = 0.0
        else:
            after_predictions = predict_placement(service.model, after)
            total_after = weighted_total_time(after_predictions, after)
        violation_after = sum(
            c.violation(after_predictions) for c in constraints
        )

        # Destinations in descending predicted headroom; the winning
        # cell's own admission controller makes the binding check.
        scored = []
        for cell in cells:
            if cell.cell_id == source.cell_id:
                continue
            score = router.score(cell, victim)
            if score is not None:
                scored.append((score, cell))
        scored.sort(key=lambda item: (-item[0].headroom, item[1].cell_id))
        for score, target in scored:
            decision = target.service.admission.try_admit(
                target.service.placement, target.service.tenants, victim
            )
            if not decision.admitted:
                continue
            assert decision.predictions is not None
            # Same gate as intra-cell rescheduling: repairing a
            # predicted violation is always worth it, otherwise the
            # move must buy back migration_cost per moved unit across
            # both cells.  Admission guarantees the destination stays
            # violation-free, so the source side is the whole QoS delta.
            repairs_qos = violation_after < violation_before
            target_before = (
                weighted_total_time(
                    predict_placement(
                        target.service.model, target.service.placement
                    ),
                    target.service.placement,
                )
                if target.service.placement is not None
                else 0.0
            )
            target_after = weighted_total_time(
                decision.predictions, decision.placement
            )
            gain = (total_before - total_after) + (target_before - target_after)
            cost = self.config.migration_cost * victim.num_units
            if not (repairs_qos or gain > cost):
                continue
            job, ends_at = service.transfer_out(victim.job_id)
            target.service.admit_transfer(job, ends_at, decision)
            _obs.RECORDER.count("scale.cell_migrations")
            log.append(
                "cell_migrate",
                epoch,
                job=job.job_id,
                workload=job.workload,
                from_cell=source.cell_id,
                to_cell=target.cell_id,
                units=job.num_units,
                margin=margin,
                predicted=decision.predictions[job.job_id],
                repairs_qos=repairs_qos,
            )
            return {
                "job": job.job_id,
                "from_cell": source.cell_id,
                "to_cell": target.cell_id,
                "units": job.num_units,
            }
        return None
