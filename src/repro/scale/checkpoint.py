"""Crash-safe checkpoints for sharded days.

A :class:`ScaleCheckpoint` is the sharded counterpart of
:class:`~repro.service.checkpoint.ServiceCheckpoint`: one per-cell
service checkpoint each, plus the global tier's own non-derivable
state (cross-cell migration counters, the merged snapshots, the global
event-log length).  Restoring it into a freshly built
:class:`~repro.scale.service.ShardedConsolidationService` and running
the remaining epochs replays the uninterrupted day's bytes — the same
recovery contract the flat service's ``--resume`` keeps.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List

from repro._util import atomic_write_text
from repro.errors import ServiceError
from repro.service.checkpoint import ServiceCheckpoint
from repro.service.telemetry import MetricsSnapshot

#: Scale-checkpoint format version; bumped on incompatible changes.
SCALE_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class ScaleCheckpoint:
    """One epoch boundary of a sharded day, across every cell."""

    seed: int
    epochs_run: int
    cell_checkpoints: List[ServiceCheckpoint]
    migrations_in: Dict[int, int]
    migrations_out: Dict[int, int]
    snapshots: List[MetricsSnapshot]
    log_length: int
    version: int = SCALE_CHECKPOINT_VERSION

    @property
    def n_cells(self) -> int:
        """Cells the captured deployment ran."""
        return len(self.cell_checkpoints)

    @property
    def epoch(self) -> int:
        """Epochs the captured deployment had completed."""
        return self.epochs_run

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, sharded) -> "ScaleCheckpoint":
        """Snapshot a sharded service at an epoch boundary."""
        return cls(
            seed=sharded.seed,
            epochs_run=sharded.epochs_run,
            cell_checkpoints=[
                ServiceCheckpoint.capture(cell.service)
                for cell in sharded.cells
            ],
            migrations_in=dict(sharded._migrations_in),
            migrations_out=dict(sharded._migrations_out),
            snapshots=list(sharded.snapshots),
            log_length=len(sharded.log),
        )

    def restore(self, sharded) -> None:
        """Install this state into a freshly built sharded service."""
        if self.seed != sharded.seed:
            raise ServiceError(
                f"checkpoint was captured at seed {self.seed}, "
                f"service runs seed {sharded.seed}"
            )
        if self.n_cells != len(sharded.cells):
            raise ServiceError(
                f"checkpoint covers {self.n_cells} cell(s), "
                f"service has {len(sharded.cells)}"
            )
        for cell, checkpoint in zip(sharded.cells, self.cell_checkpoints):
            cell.service.restore(checkpoint)
            # The cell's in-memory log restarts empty after a resume,
            # numbered from its checkpointed length; the already-merged
            # events live in the recovered global log, so merging
            # resumes from the restored log's head.
            cell.consumed = cell.service.log.start_seq
        sharded._epochs_run = self.epochs_run
        sharded._migrations_in = dict(self.migrations_in)
        sharded._migrations_out = dict(self.migrations_out)
        sharded.snapshots = list(self.snapshots)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able rendering."""
        return {
            "version": self.version,
            "seed": self.seed,
            "epochs_run": self.epochs_run,
            "cells": [cp.to_dict() for cp in self.cell_checkpoints],
            "migrations_in": {
                str(cell_id): count
                for cell_id, count in sorted(self.migrations_in.items())
            },
            "migrations_out": {
                str(cell_id): count
                for cell_id, count in sorted(self.migrations_out.items())
            },
            "snapshots": [snap.to_dict() for snap in self.snapshots],
            "log_length": self.log_length,
        }

    @classmethod
    def from_dict(cls, entry: Dict[str, object]) -> "ScaleCheckpoint":
        """Rebuild a checkpoint from its :meth:`to_dict` form."""
        try:
            version = int(entry["version"])
            if version != SCALE_CHECKPOINT_VERSION:
                raise ServiceError(
                    f"scale checkpoint version {version} unsupported "
                    f"(expected {SCALE_CHECKPOINT_VERSION})"
                )
            return cls(
                version=version,
                seed=int(entry["seed"]),
                epochs_run=int(entry["epochs_run"]),
                cell_checkpoints=[
                    ServiceCheckpoint.from_dict(item)
                    for item in entry["cells"]
                ],
                migrations_in={
                    int(cell_id): int(count)
                    for cell_id, count in entry["migrations_in"].items()
                },
                migrations_out={
                    int(cell_id): int(count)
                    for cell_id, count in entry["migrations_out"].items()
                },
                snapshots=[
                    MetricsSnapshot.from_dict(item)
                    for item in entry["snapshots"]
                ],
                log_length=int(entry["log_length"]),
            )
        except ServiceError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ServiceError("malformed scale checkpoint") from exc

    def save(self, path: str) -> None:
        """Write the checkpoint atomically (crash keeps the old one)."""
        atomic_write_text(
            path, json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"
        )

    @classmethod
    def load(cls, path: str) -> "ScaleCheckpoint":
        """Read a checkpoint written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                entry = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ServiceError(f"{path}: corrupt checkpoint") from exc
        return cls.from_dict(entry)
