"""The scale layer: sharded hierarchical consolidation.

The flat :class:`~repro.service.loop.ConsolidationService` is faithful
to the paper's 8-node testbed but does one global admission check and
one full-cluster annealing search per epoch — hopeless at thousands of
nodes.  This package makes the reproduction cluster-scale:

* :mod:`repro.scale.sharding` — seeded, deterministic partitioning of
  a cluster into *cells*, each a flat service over its own slice;
* :mod:`repro.scale.router` — the :class:`HeadroomRouter`, a cheap
  global tier scoring arrivals against per-cell predicted QoS headroom
  (batch-scored through ``predict_placements_batch``);
* :mod:`repro.scale.coordinator` — the :class:`GlobalCoordinator`,
  which watches per-cell margins each epoch and triggers cross-cell
  migration only on margin collapse, gated like intra-cell
  rescheduling;
* :mod:`repro.scale.service` — the
  :class:`ShardedConsolidationService` tying it together behind the
  flat service's interface (``repro serve --cells N``);
* :mod:`repro.scale.checkpoint` — crash-safe
  :class:`ScaleCheckpoint` resume for sharded days;
* :mod:`repro.scale.scenario` — the seeded 1000-node, 10k-job
  traffic day the ``scale-smoke`` CI job replays.

The 1-cell configuration replays the flat service byte for byte (see
:mod:`repro.scale.service`), so the scale layer is a strict superset,
not a fork, of the paper-faithful controller.
"""

from repro.scale.checkpoint import SCALE_CHECKPOINT_VERSION, ScaleCheckpoint
from repro.scale.coordinator import CoordinatorConfig, GlobalCoordinator
from repro.scale.router import CellScore, HeadroomRouter, free_slot_count
from repro.scale.scenario import (
    SCALE_DAY_ARRIVAL_RATE,
    SCALE_DAY_CELLS,
    SCALE_DAY_EPOCHS,
    SCALE_DAY_MIX,
    SCALE_DAY_NODES,
    SCALE_DAY_SEED,
    scale_day_service,
    scale_service_config,
)
from repro.scale.service import (
    Cell,
    RoutedStream,
    ShardedConsolidationService,
    build_sharded_service,
)
from repro.scale.sharding import CellSpec, shard_cluster

__all__ = [
    "Cell",
    "CellScore",
    "CellSpec",
    "CoordinatorConfig",
    "GlobalCoordinator",
    "HeadroomRouter",
    "RoutedStream",
    "SCALE_CHECKPOINT_VERSION",
    "SCALE_DAY_ARRIVAL_RATE",
    "SCALE_DAY_CELLS",
    "SCALE_DAY_EPOCHS",
    "SCALE_DAY_MIX",
    "SCALE_DAY_NODES",
    "SCALE_DAY_SEED",
    "ScaleCheckpoint",
    "ShardedConsolidationService",
    "build_sharded_service",
    "free_slot_count",
    "scale_day_service",
    "scale_service_config",
    "shard_cluster",
]
