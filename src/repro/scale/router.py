"""The headroom router: the scale layer's first (cheap) tier.

Arriving jobs are routed to the cell predicted to absorb them with the
most *QoS headroom*: the router probes a few candidate node
combinations per cell (enumerated in the same deterministic sorted
order the admission controller uses), scores them through the cell's
own online model — in one vectorized
``predict_placements_batch`` call when the model supports it — and
summarizes each cell as the best candidate's worst margin over every
mission-critical bound involved.  Emptier, calmer cells score higher;
the global tier (:mod:`repro.scale.coordinator`) only intervenes later
if a cell's margin collapses anyway.

The router is intentionally much cheaper than admission proper: it
probes ``probe_candidates`` combinations (default 4) instead of
thousands, because it only needs a *ranking* of cells — the cell's own
admission controller still makes the binding yes/no decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, islice
from typing import Dict, List, Optional, Sequence

from repro.errors import PlacementError, ServiceError
from repro.obs import recorder as _obs
from repro.placement.objectives import (
    QoSConstraint,
    predict_placement_scalar,
)
from repro.service.admission import placement_with_job
from repro.service.jobs import Job

#: Reference bound used to score best-effort jobs (the paper's
#: 80%-of-solo bound).  Mission-critical jobs are scored against their
#: own target; best-effort jobs need *some* fixed yardstick so "how
#: much headroom would this cell have" is comparable across cells.
REFERENCE_BOUND = 1.25


@dataclass(frozen=True)
class CellScore:
    """One cell's predicted fit for one job.

    ``headroom`` is the best probed candidate's minimum margin
    (``bound - predicted``) over every mission-critical tenant's
    constraint plus the job's own (or the :data:`REFERENCE_BOUND` for
    best-effort jobs); positive means every bound is predicted to
    hold with room to spare.
    """

    cell_id: int
    headroom: float
    predicted_time: float
    free_slots: int


def free_slot_count(cell) -> int:
    """Unoccupied unit slots in a cell (capacity minus resident units).

    Capacity is the cell's *schedulable* node count, so a cell on an
    elastic provider advertises the headroom it can actually grant —
    draining and reclaimed nodes drop out of its routing weight the
    epoch they stop accepting work.  Fixed-pool cells count their full
    spec, exactly as before.
    """
    service = cell.service
    slots = (
        service.schedulable_node_count()
        * service.admission.unit_slots_per_node
    )
    occupied = sum(job.num_units for job in service.tenants)
    return slots - occupied


class HeadroomRouter:
    """Scores arriving jobs against per-cell predicted headroom.

    Parameters
    ----------
    probe_candidates:
        Node combinations probed per cell per job.  Combinations are
        enumerated in sorted node order (the admission controller's
        order), so routing is deterministic.
    """

    def __init__(self, *, probe_candidates: int = 4) -> None:
        if probe_candidates <= 0:
            raise ServiceError("probe_candidates must be positive")
        self.probe_candidates = probe_candidates

    # ------------------------------------------------------------------
    def score(self, cell, job: Job) -> Optional[CellScore]:
        """This cell's :class:`CellScore` for ``job``.

        ``None`` when the cell lacks the free slots to hold the job's
        units at all (capacity, not QoS).
        """
        service = cell.service
        placement = service.placement
        admission = service.admission
        free = admission.free_nodes(placement)
        if len(free) < job.num_units:
            return None
        candidates = []
        for nodes in islice(
            combinations(free, job.num_units), self.probe_candidates
        ):
            try:
                candidates.append(
                    placement_with_job(
                        placement,
                        admission.cluster_spec,
                        job,
                        nodes,
                        unit_slots_per_node=admission.unit_slots_per_node,
                    )
                )
            except PlacementError:
                continue
        if not candidates:
            return None
        constraints = self._constraints(service.tenants, job)
        tables = self._predict(service.model, candidates)
        best: Optional[CellScore] = None
        slots = free_slot_count(cell)
        for predictions in tables:
            margin = min(
                constraint.max_normalized_time
                - predictions[constraint.instance_key]
                for constraint in constraints
            )
            # Strict > keeps the first (sorted-order) candidate on ties.
            if best is None or margin > best.headroom:
                best = CellScore(
                    cell_id=cell.cell_id,
                    headroom=margin,
                    predicted_time=predictions[job.job_id],
                    free_slots=slots,
                )
        return best

    def route(self, cells: Sequence, job: Job) -> int:
        """The cell id ``job`` should be offered to.

        Maximum headroom wins; ties break toward the lowest cell id.
        When no cell can hold the job's units, the job goes to the cell
        with the most free slots (it will queue or bounce there — the
        router never silently drops work).
        """
        best: Optional[CellScore] = None
        for cell in cells:
            score = self.score(cell, job)
            if score is None:
                continue
            if best is None or score.headroom > best.headroom:
                best = score
        if best is not None:
            _obs.RECORDER.count("scale.router.routed")
            return best.cell_id
        _obs.RECORDER.count("scale.router.no_capacity")
        fallback = max(
            cells, key=lambda cell: (free_slot_count(cell), -cell.cell_id)
        )
        return fallback.cell_id

    def route_many(
        self,
        cells: Sequence,
        jobs: Sequence[Job],
        *,
        queue_room: Optional[Dict[int, int]] = None,
    ) -> Dict[str, int]:
        """Route one epoch's whole arrival wave: ``job_id -> cell id``.

        Routing a wave through :meth:`route` alone would send every
        job to the same best cell — cell placements do not change while
        the wave is being routed, so neither do their scores.  This
        method adds the intake bookkeeping that makes a wave spread:

        * ``queue_room`` caps how many wave jobs a cell may take (the
          service passes each cell's remaining queue depth); cells at
          their cap drop out of the eligible pool, and when every cell
          is at cap the full pool is used (the job will bounce at the
          chosen cell — the router never silently drops work);
        * among eligible cells, maximum headroom still wins, but ties
          break toward the cell that has taken the *fewest* wave jobs
          so far (then the lowest cell id), so identical empty cells
          share the wave instead of queuing it all in cell 0.

        Scores are computed once per (cell, job shape): two jobs with
        the same workload, unit count, and QoS target see identical
        headroom against an unchanged placement, so an epoch's wave
        costs one scoring pass per distinct job type, not per job.
        """
        assignments: Dict[str, int] = {}
        taken = {cell.cell_id: 0 for cell in cells}
        scores: Dict[tuple, Optional[CellScore]] = {}
        for job in jobs:
            eligible = [
                cell
                for cell in cells
                if queue_room is None
                or taken[cell.cell_id] < queue_room.get(cell.cell_id, 0)
            ] or list(cells)
            best: Optional[CellScore] = None
            for cell in eligible:
                key = (cell.cell_id, job.workload, job.num_units, job.qos_target)
                if key not in scores:
                    scores[key] = self.score(cell, job)
                score = scores[key]
                if score is None:
                    continue
                if best is None or (
                    score.headroom,
                    -taken[score.cell_id],
                    -score.cell_id,
                ) > (best.headroom, -taken[best.cell_id], -best.cell_id):
                    best = score
            if best is not None:
                _obs.RECORDER.count("scale.router.routed")
                chosen = best.cell_id
            else:
                _obs.RECORDER.count("scale.router.no_capacity")
                chosen = max(
                    eligible,
                    key=lambda cell: (
                        free_slot_count(cell),
                        -taken[cell.cell_id],
                        -cell.cell_id,
                    ),
                ).cell_id
            assignments[job.job_id] = chosen
            taken[chosen] += 1
        return assignments

    # ------------------------------------------------------------------
    @staticmethod
    def _constraints(tenants: Sequence[Job], job: Job) -> List[QoSConstraint]:
        constraints = [
            tenant.qos_constraint()
            for tenant in tenants
            if tenant.mission_critical
        ]
        constraints.append(
            job.qos_constraint()
            if job.mission_critical
            else QoSConstraint(
                instance_key=job.job_id, max_normalized_time=REFERENCE_BOUND
            )
        )
        return [c for c in constraints if c is not None]

    @staticmethod
    def _predict(model, candidates: Sequence) -> List[Dict[str, float]]:
        """Per-candidate prediction tables, batched when the model can."""
        if hasattr(model, "predict_placements_batch"):
            matrix = model.predict_placements_batch(candidates)
            keys = [spec.instance_key for spec in candidates[0].instances]
            return [
                {key: float(value) for key, value in zip(keys, row)}
                for row in matrix
            ]
        return [
            predict_placement_scalar(model, candidate)
            for candidate in candidates
        ]
