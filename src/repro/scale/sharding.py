"""Deterministic cluster sharding: one big cluster, many cells.

A *cell* is a seeded, deterministic view over a slice of the cluster's
nodes.  Each cell runs its own flat
:class:`~repro.service.loop.ConsolidationService` (admission +
incremental-annealing reschedule) against a cell-local
:class:`~repro.cluster.cluster.ClusterSpec`, so every algorithm in the
placement and service layers works unchanged at cell granularity.

Sharding is a pure function of ``(cluster size, cell count, seed)``:
node membership is drawn by shuffling the global node ids with a
``stable_seed``-keyed generator and dealing contiguous, near-equal
slices.  Same seed, same assignment — the property the scale layer's
determinism tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple, Union

from repro._util import make_rng, stable_seed
from repro.cluster.cluster import Cluster, ClusterSpec
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CellSpec:
    """One cell's slice of the cluster.

    Parameters
    ----------
    cell_id:
        Dense cell index (0-based).
    node_ids:
        The *global* node ids this cell owns, sorted.  Placement inside
        the cell uses cell-local ids ``0..len(node_ids)-1``; this tuple
        is the mapping back to the global inventory.
    spec:
        The cell-local cluster description
        (``num_nodes == len(node_ids)``, all other fields inherited
        from the parent spec).
    """

    cell_id: int
    node_ids: Tuple[int, ...]
    spec: ClusterSpec

    @property
    def num_nodes(self) -> int:
        """Nodes in this cell."""
        return len(self.node_ids)


def shard_cluster(
    cluster: Union[Cluster, ClusterSpec],
    n_cells: int,
    *,
    seed: int = 0,
) -> List[CellSpec]:
    """Partition a cluster into ``n_cells`` deterministic cells.

    Parameters
    ----------
    cluster:
        The cluster (or its spec) to partition.
    n_cells:
        Number of cells; must not exceed the node count.
    seed:
        Shard seed.  Node membership derives from
        ``stable_seed("shard", num_nodes, n_cells, seed)`` only, so
        the same arguments always produce the same assignment.

    Returns
    -------
    list of CellSpec
        ``n_cells`` cells ordered by ``cell_id``; sizes differ by at
        most one node.  The 1-cell shard is the identity view
        (``node_ids == (0, ..., num_nodes - 1)``), which is what makes
        the 1-cell sharded service replay the flat service byte for
        byte.
    """
    spec = cluster.spec if isinstance(cluster, Cluster) else cluster
    if n_cells <= 0:
        raise ConfigurationError("n_cells must be positive")
    if n_cells > spec.num_nodes:
        raise ConfigurationError(
            f"cannot shard {spec.num_nodes} node(s) into {n_cells} cells"
        )
    order = list(range(spec.num_nodes))
    if n_cells > 1:
        rng = make_rng(stable_seed("shard", spec.num_nodes, n_cells, seed))
        rng.shuffle(order)
    base, extra = divmod(spec.num_nodes, n_cells)
    cells: List[CellSpec] = []
    start = 0
    for cell_id in range(n_cells):
        size = base + (1 if cell_id < extra else 0)
        node_ids = tuple(sorted(order[start:start + size]))
        start += size
        cells.append(
            CellSpec(
                cell_id=cell_id,
                node_ids=node_ids,
                spec=replace(spec, num_nodes=len(node_ids)),
            )
        )
    return cells
