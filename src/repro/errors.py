"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything coming out of this package with a single handler
while still letting programming errors (``TypeError`` etc.) surface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class PlacementError(ReproError):
    """A placement violates cluster capacity or co-location constraints."""


class ProfilingError(ReproError):
    """A profiling algorithm was driven with an invalid measurement plan."""


class ModelError(ReproError):
    """An interference model was queried outside its valid domain."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class CatalogError(ReproError):
    """An unknown workload was requested from the application catalog."""


class ServiceError(ReproError):
    """The consolidation service was configured or driven inconsistently."""


class DaemonError(ServiceError):
    """The daemon's spool, lease, or executor protocol was violated.

    Subclasses :class:`ServiceError` so callers treating the daemon as
    part of the service layer keep catching one exception family.
    """


class FaultError(ReproError):
    """A fault-injection plan or retry policy was configured inconsistently."""


class MeasurementFault(FaultError):
    """A measurement kept faulting until its retry budget was exhausted.

    Carries the workload (when known) so callers can degrade that
    workload's predictions instead of trusting a reading they never got.
    """

    def __init__(self, message: str, *, workload: str = "") -> None:
        super().__init__(message)
        self.workload = workload
