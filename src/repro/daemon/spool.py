"""The daemon's durable spool: jobs, statuses, cancel markers, lock.

A spool is a directory the daemon owns::

    spool/
      daemon.pid        # single-instance lock (SpoolLock)
      jobs/00000001.json  # one record per submission, atomically rewritten
      events.jsonl      # the day's durable event log (fsync'd per event)
      checkpoint.json   # last committed epoch boundary

Submissions are the daemon's API surface: ``repro submit`` drops a
record, the daemon drains new records into the next epoch's arrivals,
``repro status`` reads records back, ``repro cancel`` flips a cancel
marker the daemon honours at the next epoch boundary.  Every record
update is an atomic whole-file rewrite, so a concurrent reader sees
either the old record or the new one, never a torn half.

Determinism note: when the daemon drains a submission it *persists* the
assigned ``arrival_epoch`` (and likewise ``cancel_epoch`` for cancel
markers) before executing the epoch.  A daemon that crashes mid-epoch
and resumes therefore rebuilds exactly the same epoch inputs, which is
what keeps interrupted daemon days byte-identical to uninterrupted
ones.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro._util import atomic_write_text
from repro.errors import DaemonError
from repro.service.jobs import Job

#: Lifecycle states of a spooled job.  ``submitted`` → ``arrived`` (the
#: daemon drained it into an epoch) → ``waiting``/``running`` (the
#: service queued or admitted it) → one terminal state.
JOB_STATUSES = (
    "submitted",
    "arrived",
    "waiting",
    "running",
    "completed",
    "rejected",
    "cancelled",
)

#: States a job never leaves.
TERMINAL_STATUSES = ("completed", "rejected", "cancelled")

#: Event-log kinds that move a spooled job's status.
_EVENT_STATUS = {
    "arrival": "arrived",
    "queue": "waiting",
    "admit": "running",
    "reject": "rejected",
    "depart": "completed",
    "job_cancel": "cancelled",
}


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - needs foreign-uid pid
        return True
    return True


class SpoolLock:
    """Single-instance guard over a spool directory.

    An atomic pidfile (``O_CREAT | O_EXCL``) marks the spool as owned;
    a second daemon pointed at the same spool fails fast with a
    :class:`DaemonError` naming the owning pid instead of corrupting
    the shared event log.  A lock left behind by a crashed daemon (its
    pid no longer runs, or the file is torn) is recovered automatically.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._held = False

    @property
    def held(self) -> bool:
        """Whether this instance currently owns the lock."""
        return self._held

    def acquire(self) -> None:
        """Take the lock, recovering a stale one; raise if live-owned."""
        if self._held:
            return
        for attempt in range(2):
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                owner = self._read_owner()
                if owner is not None and _pid_alive(owner):
                    raise DaemonError(
                        f"another daemon (pid {owner}) already holds the "
                        f"spool lock {self.path} — stop it, or point this "
                        f"daemon at a different spool directory"
                    )
                # Stale: the owning process is gone (or the pidfile is
                # torn from a crash mid-write).  Clear it and retry the
                # exclusive create once.
                if attempt == 0:
                    try:
                        self.path.unlink()
                    except FileNotFoundError:
                        pass
                    continue
                raise DaemonError(
                    f"lost the race recovering stale spool lock {self.path}"
                )
            try:
                os.write(fd, f"{os.getpid()}\n".encode("ascii"))
                os.fsync(fd)
            finally:
                os.close(fd)
            self._held = True
            return

    def release(self) -> None:
        """Drop the lock (idempotent)."""
        if not self._held:
            return
        try:
            self.path.unlink()
        except FileNotFoundError:  # pragma: no cover - external cleanup
            pass
        self._held = False

    def _read_owner(self) -> Optional[int]:
        try:
            raw = self.path.read_text(encoding="ascii")
            return int(raw.strip())
        except (OSError, ValueError):
            return None

    def __enter__(self) -> "SpoolLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


@dataclass(frozen=True)
class JobRecord:
    """One submission's durable state (what a record file holds)."""

    seq: int
    job_id: str
    workload: str
    num_units: int
    duration_epochs: int
    qos_target: Optional[float]
    weight: float
    status: str = "submitted"
    arrival_epoch: Optional[int] = None
    cancel_requested: bool = False
    cancel_epoch: Optional[int] = None

    @property
    def terminal(self) -> bool:
        """Whether the job can no longer change state."""
        return self.status in TERMINAL_STATUSES

    def to_job(self) -> Job:
        """The service-layer job this record arrives as."""
        if self.arrival_epoch is None:
            raise DaemonError(
                f"job {self.job_id!r} has not been drained into an epoch"
            )
        return Job(
            job_id=self.job_id,
            workload=self.workload,
            num_units=self.num_units,
            duration_epochs=self.duration_epochs,
            arrival_epoch=self.arrival_epoch,
            qos_target=self.qos_target,
            weight=self.weight,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "job_id": self.job_id,
            "workload": self.workload,
            "num_units": self.num_units,
            "duration_epochs": self.duration_epochs,
            "qos_target": self.qos_target,
            "weight": self.weight,
            "status": self.status,
            "arrival_epoch": self.arrival_epoch,
            "cancel_requested": self.cancel_requested,
            "cancel_epoch": self.cancel_epoch,
        }

    @classmethod
    def from_dict(cls, entry: Dict[str, object]) -> "JobRecord":
        try:
            status = str(entry["status"])
            if status not in JOB_STATUSES:
                raise DaemonError(f"unknown job status {status!r}")
            return cls(
                seq=int(entry["seq"]),
                job_id=str(entry["job_id"]),
                workload=str(entry["workload"]),
                num_units=int(entry["num_units"]),
                duration_epochs=int(entry["duration_epochs"]),
                qos_target=(
                    None if entry["qos_target"] is None
                    else float(entry["qos_target"])
                ),
                weight=float(entry["weight"]),
                status=status,
                arrival_epoch=(
                    None if entry["arrival_epoch"] is None
                    else int(entry["arrival_epoch"])
                ),
                cancel_requested=bool(entry["cancel_requested"]),
                cancel_epoch=(
                    None if entry.get("cancel_epoch") is None
                    else int(entry["cancel_epoch"])
                ),
            )
        except DaemonError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise DaemonError(f"malformed job record: {entry!r}") from exc


class JobSpool:
    """The durable job queue and status store over a spool directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @property
    def lock_path(self) -> Path:
        """The single-instance pidfile."""
        return self.root / "daemon.pid"

    @property
    def events_path(self) -> Path:
        """The daemon's durable event log."""
        return self.root / "events.jsonl"

    @property
    def checkpoint_path(self) -> Path:
        """The last committed epoch boundary."""
        return self.root / "checkpoint.json"

    def _record_path(self, seq: int) -> Path:
        return self.jobs_dir / f"{seq:08d}.json"

    def _write(self, record: JobRecord) -> None:
        atomic_write_text(
            str(self._record_path(record.seq)),
            json.dumps(record.to_dict(), sort_keys=True, indent=2) + "\n",
        )

    def _load(self, path: Path) -> JobRecord:
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise DaemonError(f"{path}: corrupt job record") from exc
        return JobRecord.from_dict(entry)

    # ------------------------------------------------------------------
    # Submission API (used by `repro submit/status/cancel`)
    # ------------------------------------------------------------------
    def jobs(self) -> List[JobRecord]:
        """Every spooled record, in submission order."""
        return [
            self._load(path)
            for path in sorted(self.jobs_dir.glob("*.json"))
        ]

    def status(self, job_id: str) -> JobRecord:
        """The record for ``job_id``; raises if unknown."""
        for record in self.jobs():
            if record.job_id == job_id:
                return record
        raise DaemonError(f"no spooled job with id {job_id!r}")

    def submit(
        self,
        workload: str,
        *,
        num_units: int = 4,
        duration_epochs: int = 1,
        qos_target: Optional[float] = None,
        weight: float = 1.0,
        job_id: Optional[str] = None,
    ) -> JobRecord:
        """Spool a new job for the daemon's next epoch boundary.

        Record files are created exclusively (hard-link of a fully
        written temp file), so concurrent submitters can race on the
        same sequence number and both still land complete records.
        """
        existing = self.jobs()
        if job_id is not None and any(r.job_id == job_id for r in existing):
            raise DaemonError(f"job id {job_id!r} is already spooled")
        seq = (existing[-1].seq + 1) if existing else 1
        while True:
            final_id = job_id if job_id is not None else f"sub-{seq:06d}"
            record = JobRecord(
                seq=seq,
                job_id=final_id,
                workload=workload,
                num_units=num_units,
                duration_epochs=duration_epochs,
                qos_target=qos_target,
                weight=weight,
            )
            # Validate through the service-layer constructor before
            # anything touches disk (bad units/durations fail loudly).
            replace(record, arrival_epoch=0).to_job()
            path = self._record_path(seq)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(
                json.dumps(record.to_dict(), sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            try:
                os.link(tmp, path)
            except FileExistsError:
                seq += 1
                continue
            finally:
                tmp.unlink()
            return record

    def request_cancel(self, job_id: str) -> JobRecord:
        """Mark ``job_id`` for cancellation at the next epoch boundary.

        Idempotent; raises :class:`DaemonError` for jobs already in a
        terminal state (there is nothing left to cancel).
        """
        record = self.status(job_id)
        if record.terminal:
            raise DaemonError(
                f"job {job_id!r} is already {record.status}; "
                f"cancellation has nothing to do"
            )
        if record.cancel_requested:
            return record
        record = replace(record, cancel_requested=True)
        self._write(record)
        return record

    # ------------------------------------------------------------------
    # Daemon-side draining (epoch input construction)
    # ------------------------------------------------------------------
    def arrivals_for(self, epoch: int) -> List[Job]:
        """Jobs already assigned to arrive at ``epoch`` (resume rebuild)."""
        return [
            record.to_job()
            for record in self.jobs()
            if record.arrival_epoch == epoch
        ]

    def drain_submissions(self, epoch: int) -> List[Job]:
        """Assign fresh submissions to ``epoch``; returns their jobs.

        A submission whose cancel marker was set before it ever arrived
        is finalized as ``cancelled`` here without entering the service
        at all (no events, nothing to unwind).  The assigned
        ``arrival_epoch`` is persisted *before* the epoch executes, so
        a crash-and-resume rebuilds identical arrivals.
        """
        drained: List[Job] = []
        for record in self.jobs():
            if record.status != "submitted":
                continue
            if record.cancel_requested:
                self._write(replace(record, status="cancelled"))
                continue
            record = replace(
                record, status="arrived", arrival_epoch=epoch
            )
            self._write(record)
            drained.append(record.to_job())
        return drained

    def cancels_for(self, epoch: int) -> List[str]:
        """Job ids whose cancellation executes at ``epoch`` (rebuild)."""
        return [
            record.job_id
            for record in self.jobs()
            if record.cancel_epoch == epoch
        ]

    def drain_cancels(self, epoch: int) -> List[str]:
        """Assign fresh cancel markers to ``epoch``; returns job ids.

        Only jobs the service currently knows (``waiting`` or
        ``running`` as of the last committed boundary) are drained; a
        cancel raced against the job's own arrival stays pending until
        the next boundary.
        """
        drained: List[str] = []
        for record in self.jobs():
            if not record.cancel_requested or record.cancel_epoch is not None:
                continue
            if record.status not in ("waiting", "running"):
                continue
            self._write(replace(record, cancel_epoch=epoch))
            drained.append(record.job_id)
        return drained

    # ------------------------------------------------------------------
    # Status folding (the status-updater half of the commit path)
    # ------------------------------------------------------------------
    def apply_events(self, events: Iterable) -> int:
        """Fold committed service events into job statuses.

        Only events about spooled jobs matter (stream-generated traffic
        flows through the same log but has no record here).  Replaying
        the whole recovered log over already-updated records is
        idempotent, which is how a daemon that crashed between its
        checkpoint write and its status update heals on restart.
        """
        records = {record.job_id: record for record in self.jobs()}
        updated = 0
        for event in events:
            status = _EVENT_STATUS.get(event.kind)
            if status is None:
                continue
            payload = dict(event.payload)
            record = records.get(str(payload.get("job")))
            if record is None or record.status == status:
                continue
            if record.terminal and status != "cancelled":
                continue
            record = replace(record, status=status)
            records[record.job_id] = record
            self._write(record)
            updated += 1
        return updated

    def submitted_count(self) -> int:
        """Submissions not yet drained into an epoch (queue depth)."""
        return sum(1 for r in self.jobs() if r.status == "submitted")
