"""The daemon layer: a persistent, lease-fenced consolidation service.

Turns the single-process traffic day (:mod:`repro.service`) into a
daemon: a durable file-backed job spool fed by ``repro submit`` /
``status`` / ``cancel``, a pool of executor workers that claim epoch
executions under renewable leases, a health-checker that reaps lapsed
leases and requeues orphaned work, and a status-updater that folds
committed epochs back into the event log and checkpoint.  Epoch
execution is a pure function of ``(checkpoint, arrivals, cancels)``,
so committed bytes are independent of worker count, crashes, and lease
churn — the determinism contract ``repro serve`` keeps, extended to a
fault-tolerant executor.
"""

from repro.daemon.daemon import ConsolidationDaemon
from repro.daemon.executor import (
    EpochOutcome,
    EpochTask,
    ExecutorPool,
    ServiceBlueprint,
    execute_epoch,
)
from repro.daemon.lease import Lease, LogicalClock, SlotManager
from repro.daemon.spool import (
    JOB_STATUSES,
    TERMINAL_STATUSES,
    JobRecord,
    JobSpool,
    SpoolLock,
)

__all__ = [
    "ConsolidationDaemon",
    "EpochOutcome",
    "EpochTask",
    "ExecutorPool",
    "ServiceBlueprint",
    "execute_epoch",
    "Lease",
    "LogicalClock",
    "SlotManager",
    "JOB_STATUSES",
    "TERMINAL_STATUSES",
    "JobRecord",
    "JobSpool",
    "SpoolLock",
]
