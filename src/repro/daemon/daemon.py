"""The consolidation daemon: queue → lease → executor → status-updater.

:class:`ConsolidationDaemon` turns the single-process traffic day into
a persistent service.  Its control loop, per epoch:

1. **build the task** — freeze the epoch's inputs: stream arrivals
   plus freshly drained spool submissions (``repro submit``) and cancel
   markers (``repro cancel``), each persisted with its assigned epoch
   *before* execution so a crashed daemon rebuilds identical inputs;
2. **dispatch** — idle executor workers claim the task under a
   renewable lease from the :class:`~repro.daemon.lease.SlotManager`;
3. **health-check** — every tick, lapsed leases (a crashed or wedged
   worker stopped renewing) are reaped and their work requeued with a
   bumped attempt counter;
4. **commit** (the status-updater) — a completed execution is folded
   back only if its lease is still current: events are appended (fsync
   per event) to the durable log, the checkpoint is atomically
   replaced, and spooled job statuses are updated.  A stale lease —
   the fencing token moved on while the worker wedged — is discarded,
   which is what makes re-execution safe.

Because epoch execution is pure
(:func:`~repro.daemon.executor.execute_epoch`), the committed bytes
are independent of worker count, crash timing, and lease churn: the
same seeded day through 1, 2, or 4 workers — with or without injected
``worker``/``lease`` faults — produces byte-identical event logs and
final snapshots, and they match the flat ``repro serve`` day.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Union

from repro.errors import DaemonError
from repro.daemon.executor import (
    EpochOutcome,
    EpochTask,
    ExecutorPool,
    ServiceBlueprint,
    execute_epoch,
)
from repro.daemon.lease import LogicalClock, SlotManager
from repro.daemon.spool import JobRecord, JobSpool, SpoolLock
from repro.obs import recorder as _obs
from repro.service.checkpoint import ServiceCheckpoint
from repro.service.events import EventLog
from repro.service.telemetry import MetricsSnapshot


class ConsolidationDaemon:
    """A lease-fenced, crash-safe executor over a spooled traffic day.

    Parameters
    ----------
    spool:
        The spool directory (or a :class:`JobSpool` over one) holding
        the durable queue, event log, checkpoint, and lock.
    blueprint:
        How to rebuild the day's service for each pure execution.
    stream:
        Optional background traffic source (``arrivals(epoch)``);
        spooled submissions arrive *after* stream jobs each epoch.
    workers:
        Executor pool size.  Changes scheduling only — committed bytes
        are worker-count-independent.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` whose ``worker``
        and ``lease`` families inject crashes and wedges into the pool.
    lease_ticks / exec_ticks:
        Lease validity and healthy execution time, in logical ticks.
    max_ticks_per_epoch:
        Liveness bound; exceeding it raises instead of spinning.
    """

    def __init__(
        self,
        spool: Union[str, JobSpool],
        blueprint: ServiceBlueprint,
        stream=None,
        *,
        workers: int = 2,
        faults=None,
        lease_ticks: int = 4,
        exec_ticks: int = 2,
        max_ticks_per_epoch: int = 1000,
    ) -> None:
        if max_ticks_per_epoch <= 0:
            raise DaemonError("max_ticks_per_epoch must be positive")
        self.spool = spool if isinstance(spool, JobSpool) else JobSpool(spool)
        self.blueprint = blueprint
        self.stream = stream
        self.faults = faults
        self.max_ticks_per_epoch = max_ticks_per_epoch
        self.clock = LogicalClock()
        self.slots = SlotManager(lease_ticks=lease_ticks, clock=self.clock)
        self.pool = ExecutorPool(
            workers, self.slots, faults=faults, exec_ticks=exec_ticks
        )
        self._lock = SpoolLock(self.spool.lock_path)
        self.log: EventLog = EventLog()
        self.snapshots: List[MetricsSnapshot] = []
        self._checkpoint: Optional[ServiceCheckpoint] = None
        self._stats: Dict[str, int] = {
            "commits": 0,
            "stale_commits": 0,
            "reaps": 0,
            "requeues": 0,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epochs_run(self) -> int:
        """Committed epoch boundary (0 before the first epoch)."""
        return self._checkpoint.epoch if self._checkpoint is not None else 0

    @property
    def stats(self) -> Dict[str, int]:
        """Pool and commit-path counters, merged."""
        merged = dict(self.pool.stats)
        merged.update(self._stats)
        return merged

    # ------------------------------------------------------------------
    # The in-process API object (what the CLI verbs call)
    # ------------------------------------------------------------------
    def submit(self, workload: str, **kwargs) -> JobRecord:
        """Spool a job; it arrives at the next uncommitted boundary."""
        return self.spool.submit(workload, **kwargs)

    def status(self, job_id: str) -> JobRecord:
        """The spooled job's current lifecycle state."""
        return self.spool.status(job_id)

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation, honoured at the next boundary."""
        return self.spool.request_cancel(job_id)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Adopt the spool's durable state (or initialize a fresh day).

        A recovered log is validated against the checkpoint boundary
        (mismatched artifacts fail with epoch, path, and reason) and
        truncated to it — events appended by a commit the crash
        interrupted are re-derived when the epoch re-runs.  Replaying
        the surviving log over the spool heals job statuses a crash
        between checkpoint write and status update left stale.
        """
        events_path = str(self.spool.events_path)
        if self.spool.checkpoint_path.exists():
            checkpoint = ServiceCheckpoint.load(
                str(self.spool.checkpoint_path)
            )
            if self.spool.events_path.exists():
                log = EventLog.recover(events_path)
            else:
                log = EventLog()
            log.validate_tail(
                checkpoint.log_length, checkpoint.epoch, path=events_path
            )
            log.truncate(checkpoint.log_length)
        else:
            checkpoint = self.blueprint.initial_checkpoint()
            checkpoint.save(str(self.spool.checkpoint_path))
            log = EventLog()
        self._checkpoint = checkpoint
        self.log = log
        self.log.attach(events_path)
        self.snapshots = list(checkpoint.snapshots)
        self.spool.apply_events(list(self.log))

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def run(self, epochs: int) -> List[MetricsSnapshot]:
        """Advance the spooled day through epoch ``epochs``.

        Takes the spool's single-instance lock for the duration (a
        second daemon on the same spool fails fast), recovers the last
        committed boundary, and runs the remaining epochs.  Returns the
        snapshots of the epochs committed by *this* call, so a resumed
        daemon returns only what it newly ran.
        """
        if epochs <= 0:
            raise DaemonError("epochs must be positive")
        with self._lock:
            self._recover()
            assert self._checkpoint is not None
            fresh: List[MetricsSnapshot] = []
            try:
                for epoch in range(self._checkpoint.epoch, epochs):
                    fresh.append(self._run_one_epoch(epoch))
            finally:
                self.log.detach()
            return fresh

    def _build_task(self, epoch: int) -> EpochTask:
        _obs.RECORDER.gauge(
            "daemon.queue_depth", self.spool.submitted_count()
        )
        arrivals = (
            list(self.stream.arrivals(epoch))
            if self.stream is not None
            else []
        )
        # Submissions drained by a crashed incarnation keep their
        # persisted epoch; fresh ones are assigned (and persisted) now.
        arrivals += self.spool.arrivals_for(epoch)
        arrivals += self.spool.drain_submissions(epoch)
        cancels = self.spool.cancels_for(epoch)
        cancels += self.spool.drain_cancels(epoch)
        return EpochTask(
            epoch=epoch, arrivals=tuple(arrivals), cancels=tuple(cancels)
        )

    def _run_one_epoch(self, epoch: int) -> MetricsSnapshot:
        task = self._build_task(epoch)
        pending: List[EpochTask] = [task]
        committed: Optional[EpochOutcome] = None
        pool_before = dict(self.pool.stats)
        with _obs.RECORDER.span(
            "daemon.epoch", epoch=epoch, workers=self.pool.size
        ) as span:
            ticks = 0
            while committed is None:
                ticks += 1
                if ticks > self.max_ticks_per_epoch:
                    raise DaemonError(
                        f"epoch {epoch} made no progress after "
                        f"{ticks - 1} ticks — every attempt crashed "
                        f"or wedged"
                    )
                self.clock.tick()
                # Health-checker: reap lapsed leases, requeue their work.
                for lease in self.slots.reap_expired():
                    self._stats["reaps"] += 1
                    _obs.RECORDER.count("daemon.reaps")
                    orphan = self.pool.task_of_reaped(lease)
                    if orphan is not None:
                        pending.append(
                            replace(orphan, attempt=orphan.attempt + 1)
                        )
                        self._stats["requeues"] += 1
                        _obs.RECORDER.count("daemon.requeues")
                # Dispatcher: idle workers claim pending work in order.
                while pending:
                    lease = self.pool.dispatch(pending[0])
                    if lease is None:
                        break
                    pending.pop(0)
                    _obs.RECORDER.count("daemon.claims")
                # One scheduler tick; commit current-lease completions.
                for execution in self.pool.advance():
                    if committed is not None or not self.slots.is_current(
                        execution.lease
                    ):
                        # The fencing token moved on (the lease was
                        # reaped and the work re-executed): discard.
                        self._stats["stale_commits"] += 1
                        _obs.RECORDER.count("daemon.stale_commits")
                        continue
                    outcome = execute_epoch(
                        self.blueprint, self._checkpoint, execution.task
                    )
                    self.slots.release(execution.lease)
                    self._commit(outcome)
                    committed = outcome
                _obs.RECORDER.gauge(
                    "daemon.active_leases", self.slots.active_count
                )
            span.set(
                ticks=ticks,
                attempts=committed.task.attempt + 1,
                log_seq_end=len(self.log),
            )
        for key, name in (
            ("worker_crashes", "daemon.worker_crashes"),
            ("respawns", "daemon.workers_spawned"),
            ("wedges", "daemon.lease_wedges"),
        ):
            delta = self.pool.stats[key] - pool_before[key]
            if delta:
                _obs.RECORDER.count(name, delta)
        _obs.RECORDER.count("daemon.epochs")
        return committed.snapshot

    # ------------------------------------------------------------------
    # The status-updater (the only durable mutation site)
    # ------------------------------------------------------------------
    def _commit(self, outcome: EpochOutcome) -> None:
        assert self._checkpoint is not None
        for event in outcome.events:
            appended = self.log.append(
                event.kind, event.epoch, **dict(event.payload)
            )
            if appended.seq != event.seq:
                raise DaemonError(
                    f"commit would renumber event {event.seq} to "
                    f"{appended.seq}; durable log and checkpoint have "
                    f"diverged"
                )
        outcome.checkpoint.save(str(self.spool.checkpoint_path))
        self._checkpoint = outcome.checkpoint
        self.snapshots.append(outcome.snapshot)
        self.spool.apply_events(outcome.events)
        self._stats["commits"] += 1
        _obs.RECORDER.count("daemon.commits")
