"""Pure epoch execution and the daemon's worker pool.

The keystone of the daemon is that one epoch of the consolidation
service is a **pure function** of ``(checkpoint, arrivals, cancels)``:
every stochastic choice inside an epoch derives from ``stable_seed``
labels, measurements are label-seeded and runner-state-independent, and
the checkpoint carries all non-derivable state.  :func:`execute_epoch`
exploits that — it builds a *fresh* service around the blueprint,
restores the checkpoint, and runs exactly one epoch.  Because the
function is pure, re-executing an epoch after a worker crash (or
executing it twice concurrently under a fencing race) produces the same
bytes, so the daemon can promise byte-identical event logs regardless
of worker count or injected faults.

:class:`ExecutorPool` models the N workers as a deterministic
logical-tick scheduler rather than OS threads: workers claim tasks in
worker-id order, renew their leases every tick, and — under an injected
:class:`~repro.faults.plan.FaultPlan` — crash (stop renewing and die)
or wedge (stop renewing but finish late and attempt a stale commit).
Logical concurrency keeps every run replayable while still exercising
the full claim/renew/reap/requeue/fence protocol a thread pool would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.online import OnlineModel
from repro.errors import DaemonError, ServiceError
from repro.daemon.lease import Lease, SlotManager
from repro.service.checkpoint import ServiceCheckpoint
from repro.service.events import ServiceEvent
from repro.service.jobs import Job
from repro.service.loop import ConsolidationService, ServiceConfig
from repro.service.stream import FixedStream
from repro.service.telemetry import MetricsSnapshot


@dataclass(frozen=True)
class EpochTask:
    """One claimable unit of work: run epoch ``epoch`` of the day.

    ``arrivals`` and ``cancels`` are the epoch's frozen inputs (stream
    traffic plus drained spool submissions / cancel markers);
    ``attempt`` counts executions of this epoch so far, so fault draws
    differ per retry while the epoch's *bytes* cannot.
    """

    epoch: int
    arrivals: Tuple[Job, ...] = ()
    cancels: Tuple[str, ...] = ()
    attempt: int = 0

    @property
    def work_id(self) -> str:
        """Lease key; unique per (epoch, attempt)."""
        return f"epoch-{self.epoch}#a{self.attempt}"


@dataclass(frozen=True)
class EpochOutcome:
    """What one pure execution produced (everything a commit needs)."""

    task: EpochTask
    checkpoint: ServiceCheckpoint
    events: Tuple[ServiceEvent, ...]
    snapshot: MetricsSnapshot


class ServiceBlueprint:
    """Everything needed to rebuild the day's service from scratch.

    Parameters
    ----------
    runner_factory:
        Zero-argument callable producing a fresh
        :class:`~repro.sim.runner.ClusterRunner`; called once per
        execution so no runner state can leak between epochs.
    model:
        The *base* (profiled) interference model, shared read-only
        across executions.  Must not be an
        :class:`~repro.core.online.OnlineModel` — each execution wraps
        its own, and loads the learned corrections from the checkpoint.
    config / seed:
        The service's operating knobs and root seed, identical to the
        flat day being reproduced.
    provider_factory:
        Optional zero-argument callable producing a fresh
        :class:`~repro.providers.base.CapacityProvider` per execution.
        Like the runner, the provider is rebuilt from scratch and its
        inventory restored from the checkpoint's ``provider_state``, so
        pool resizes and in-flight preemption warnings survive the
        daemon's claim/crash/re-execute cycle byte-identically.
    """

    def __init__(
        self,
        runner_factory,
        model,
        *,
        config: Optional[ServiceConfig] = None,
        seed: int = 0,
        provider_factory=None,
    ) -> None:
        if isinstance(model, OnlineModel):
            raise DaemonError(
                "blueprint needs the base profiled model, not an "
                "OnlineModel — each execution wraps its own and loads "
                "corrections from the checkpoint"
            )
        self.runner_factory = runner_factory
        self.model = model
        self.config = config or ServiceConfig()
        self.seed = seed
        self.provider_factory = provider_factory

    def build(self, stream=None) -> ConsolidationService:
        """A fresh service over a fresh runner (and the shared model)."""
        return ConsolidationService(
            self.runner_factory(),
            self.model,
            stream if stream is not None else FixedStream(),
            config=self.config,
            seed=self.seed,
            provider=(
                self.provider_factory()
                if self.provider_factory is not None
                else None
            ),
        )

    def initial_checkpoint(self) -> ServiceCheckpoint:
        """The pristine epoch-0 boundary a brand-new day starts from."""
        return self.build().checkpoint()


def execute_epoch(
    blueprint: ServiceBlueprint,
    checkpoint: ServiceCheckpoint,
    task: EpochTask,
) -> EpochOutcome:
    """Run one epoch as a pure function of ``(checkpoint, task)``.

    Builds a fresh service, restores the boundary, applies the task's
    cancel requests (a cancel whose job already left the system is a
    no-op, exactly as in the live service), runs the epoch, and returns
    the new boundary plus the events it appended — numbered from the
    checkpoint's global log length, so they splice verbatim onto the
    daemon's durable log.
    """
    if task.epoch != checkpoint.epoch:
        raise DaemonError(
            f"task executes epoch {task.epoch} but the checkpoint is at "
            f"boundary {checkpoint.epoch}"
        )
    service = blueprint.build(FixedStream(schedule=tuple(task.arrivals)))
    service.restore(checkpoint)
    for job_id in task.cancels:
        try:
            service.cancel(job_id)
        except ServiceError:
            # The job departed (or was rejected) before the boundary;
            # the cancel is a no-op, matching the live service.
            pass
    snapshot = service.run_epoch(task.epoch)
    return EpochOutcome(
        task=task,
        checkpoint=service.checkpoint(),
        events=tuple(service.log.since(checkpoint.log_length)),
        snapshot=snapshot,
    )


@dataclass
class _Execution:
    """One worker's in-flight claim (scheduler-internal)."""

    task: EpochTask
    lease: Lease
    worker_id: int
    remaining: int
    #: Renewals left before the worker goes silent; ``None`` renews
    #: forever (healthy), 0 never renews again (crashed/wedged).
    renew_left: Optional[int] = None
    #: Ticks until a crashed worker dies; ``None`` for live workers.
    dies_in: Optional[int] = None


class ExecutorPool:
    """N deterministic logical workers claiming epoch executions.

    Parameters
    ----------
    size:
        Worker count.  Because epoch execution is pure, the count can
        only change *scheduling* (who claims, when leases churn), never
        the committed bytes.
    slots:
        The :class:`~repro.daemon.lease.SlotManager` leases are held
        against (shares the daemon's logical clock).
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`; its ``worker``
        and ``lease`` families decide per (epoch, attempt) whether a
        claim crashes or wedges.
    exec_ticks:
        Logical ticks a healthy execution takes.  Raising it past the
        slot manager's ``lease_ticks`` models a straggling worker that
        must renew to survive.
    """

    def __init__(
        self,
        size: int,
        slots: SlotManager,
        *,
        faults=None,
        exec_ticks: int = 2,
    ) -> None:
        if size <= 0:
            raise DaemonError("executor pool needs at least one worker")
        if exec_ticks <= 0:
            raise DaemonError("exec_ticks must be positive")
        self.size = size
        self.slots = slots
        self.faults = faults
        self.exec_ticks = exec_ticks
        self._next_worker_id = 0
        self._idle: List[int] = [self._spawn() for _ in range(size)]
        self._running: Dict[int, _Execution] = {}
        #: Tasks whose worker died, keyed by the orphaned lease token;
        #: the reaper trades the expired lease back for the task.
        self._orphans: Dict[int, EpochTask] = {}
        self.stats: Dict[str, int] = {
            "claims": 0,
            "completions": 0,
            "worker_crashes": 0,
            "wedges": 0,
            "respawns": 0,
        }

    def _spawn(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        return worker_id

    # ------------------------------------------------------------------
    @property
    def idle_count(self) -> int:
        """Workers waiting for work."""
        return len(self._idle)

    @property
    def busy_count(self) -> int:
        """Workers holding a claim (including wedged ones)."""
        return len(self._running)

    # ------------------------------------------------------------------
    def dispatch(self, task: EpochTask) -> Optional[Lease]:
        """Have the lowest-id idle worker claim ``task``.

        Returns the granted lease, or ``None`` when every worker is
        busy (the task stays queued).  Fault draws happen here, once
        per claim: a *crashing* claim will die after one tick without
        ever renewing; a *wedging* claim renews once, goes silent, but
        keeps executing past its lease.
        """
        if not self._idle:
            return None
        worker_id = self._idle.pop(0)
        lease = self.slots.claim(task.work_id, worker_id)
        crashed = bool(
            self.faults is not None
            and self.faults.worker_crashes(task.epoch, task.attempt)
        )
        wedged = bool(
            not crashed
            and self.faults is not None
            and self.faults.lease_expires(task.epoch, task.attempt)
        )
        if crashed:
            execution = _Execution(
                task=task, lease=lease, worker_id=worker_id,
                remaining=self.exec_ticks, renew_left=0, dies_in=1,
            )
        elif wedged:
            execution = _Execution(
                task=task, lease=lease, worker_id=worker_id,
                remaining=self.exec_ticks + self.slots.lease_ticks + 2,
                renew_left=1,
            )
            self.stats["wedges"] += 1
        else:
            execution = _Execution(
                task=task, lease=lease, worker_id=worker_id,
                remaining=self.exec_ticks,
            )
        self._running[worker_id] = execution
        self.stats["claims"] += 1
        return lease

    def advance(self) -> List[_Execution]:
        """One scheduler tick for every busy worker, in id order.

        Healthy workers renew their lease and make progress; crashed
        workers die (their task becomes an orphan awaiting the reaper,
        and a replacement worker is spawned so the pool stays at
        strength); finished workers return to the idle list.  Returns
        the executions that completed this tick — the daemon computes
        and commits their outcomes.
        """
        completed: List[_Execution] = []
        for worker_id in sorted(self._running):
            execution = self._running[worker_id]
            if execution.dies_in is not None:
                execution.dies_in -= 1
                if execution.dies_in <= 0:
                    del self._running[worker_id]
                    self._orphans[execution.lease.token] = execution.task
                    self._idle.append(self._spawn())
                    self._idle.sort()
                    self.stats["worker_crashes"] += 1
                    self.stats["respawns"] += 1
                continue
            if execution.renew_left is None:
                self.slots.renew(execution.lease)
            elif execution.renew_left > 0:
                self.slots.renew(execution.lease)
                execution.renew_left -= 1
            execution.remaining -= 1
            if execution.remaining <= 0:
                del self._running[worker_id]
                self._idle.append(worker_id)
                self._idle.sort()
                self.stats["completions"] += 1
                completed.append(execution)
        return completed

    def task_of_reaped(self, lease: Lease) -> Optional[EpochTask]:
        """The task behind a reaped lease, for requeueing.

        Covers both orphans (the worker died) and wedged workers (still
        grinding; their eventual commit is fenced by the stale token).
        ``None`` when the lease belongs to no tracked work — e.g. it
        was already traded in.
        """
        task = self._orphans.pop(lease.token, None)
        if task is not None:
            return task
        for execution in self._running.values():
            if execution.lease.token == lease.token:
                return execution.task
        return None
