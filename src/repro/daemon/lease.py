"""Renewable leases over claimed work.

The daemon's executor pool claims epoch executions under *leases*: a
worker that claims a piece of work must keep renewing its lease while
it executes, and the daemon's health-checker reaps any lease whose
holder stopped renewing (a crashed or wedged worker) so the work can be
requeued.  The lease token is the fencing mechanism: a commit is only
accepted from the *current* token holder, so a reaped worker that later
finishes cannot double-commit work that was already re-executed.

Time here is **logical**: a :class:`LogicalClock` counts scheduler
ticks, not wall seconds.  That keeps the whole claim/renew/expire/reap
protocol deterministic — the same seeded day with the same injected
faults reaps the same leases on the same ticks, every run — which is
what lets the daemon promise byte-identical event logs regardless of
worker count or injected crashes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.errors import DaemonError


class LogicalClock:
    """A monotonic tick counter (the daemon's only notion of time)."""

    def __init__(self) -> None:
        self._now = 0

    def now(self) -> int:
        """The current tick."""
        return self._now

    def tick(self, steps: int = 1) -> int:
        """Advance time by ``steps`` ticks; returns the new tick."""
        if steps <= 0:
            raise DaemonError("clock can only move forward")
        self._now += steps
        return self._now


@dataclass(frozen=True)
class Lease:
    """One worker's time-bounded claim on one piece of work.

    Parameters
    ----------
    work_id:
        Key of the claimed work (e.g. ``"epoch-3#a0"``).
    worker_id:
        The claiming worker.
    token:
        Monotonically increasing fencing token; a commit is accepted
        only while the slot still holds this token.
    expires_at:
        Tick at which the lease lapses unless renewed.  The
        :class:`SlotManager` tracks the *live* expiry; this field is
        the expiry as of grant/renew time.
    """

    work_id: str
    worker_id: int
    token: int
    expires_at: int


class SlotManager:
    """Grants, renews, fences, and reaps leases over work slots.

    Parameters
    ----------
    lease_ticks:
        Ticks a lease stays valid after each grant or renewal.  Must be
        at least 2 so a healthy worker that renews every tick can never
        be reaped between its renewal and the next health check.
    clock:
        The logical clock leases are measured against (shared with the
        executor pool's scheduler).
    """

    def __init__(
        self,
        *,
        lease_ticks: int = 4,
        clock: Optional[LogicalClock] = None,
    ) -> None:
        if lease_ticks < 2:
            raise DaemonError("lease_ticks must be at least 2")
        self.lease_ticks = lease_ticks
        self.clock = clock or LogicalClock()
        self._slots: Dict[str, Lease] = {}
        self._next_token = 0

    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Currently granted, unexpired leases."""
        now = self.clock.now()
        return sum(
            1 for lease in self._slots.values() if lease.expires_at > now
        )

    def claim(self, work_id: str, worker_id: int) -> Lease:
        """Grant ``worker_id`` a lease on ``work_id``.

        Raises
        ------
        DaemonError
            If another worker holds an unexpired lease on the same
            work — claimed work is exclusive until its lease lapses.
        """
        now = self.clock.now()
        current = self._slots.get(work_id)
        if current is not None and current.expires_at > now:
            raise DaemonError(
                f"work {work_id!r} is already leased to worker "
                f"{current.worker_id} (token {current.token})"
            )
        self._next_token += 1
        lease = Lease(
            work_id=work_id,
            worker_id=worker_id,
            token=self._next_token,
            expires_at=now + self.lease_ticks,
        )
        self._slots[work_id] = lease
        return lease

    def renew(self, lease: Lease) -> bool:
        """Extend a held lease; ``False`` when it is stale or lapsed.

        Only the current token holder can renew, and only before
        expiry — a worker that let its lease lapse must not resurrect
        it (the reaper may already have requeued the work).
        """
        held = self._slots.get(lease.work_id)
        now = self.clock.now()
        if held is None or held.token != lease.token:
            return False
        if held.expires_at <= now:
            return False
        self._slots[lease.work_id] = replace(
            held, expires_at=now + self.lease_ticks
        )
        return True

    def is_current(self, lease: Lease) -> bool:
        """Whether ``lease`` still fences its work (commit gate)."""
        held = self._slots.get(lease.work_id)
        return (
            held is not None
            and held.token == lease.token
            and held.expires_at > self.clock.now()
        )

    def release(self, lease: Lease) -> bool:
        """Give up a held lease (after a successful commit)."""
        held = self._slots.get(lease.work_id)
        if held is None or held.token != lease.token:
            return False
        del self._slots[lease.work_id]
        return True

    def reap_expired(self) -> List[Lease]:
        """Remove and return every lapsed lease (the health check).

        Returned in ``work_id`` order so the requeue order — and
        therefore the whole day — is deterministic.
        """
        now = self.clock.now()
        expired = sorted(
            (
                lease
                for lease in self._slots.values()
                if lease.expires_at <= now
            ),
            key=lambda lease: lease.work_id,
        )
        for lease in expired:
            del self._slots[lease.work_id]
        return expired
