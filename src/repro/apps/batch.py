"""Single-node batch co-runners (SPEC CPU2006).

The paper uses SPEC CPU2006 applications as batch co-running workloads
(Table 1, Section 5.1): 32 independent single-threaded instances, two
per dual-core VM.  Instances neither communicate nor synchronize; the
job finishes when the last instance does (max of per-slot sums), so
propagation semantics do not apply — they matter as *pressure sources*
and as throughput terms in the placement objectives.

Instances execute as a single stage of statically-bound chunks so that
pressure changes (a co-runner finishing) take effect at chunk
boundaries.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import Stage, Workload, WorkloadSpec
from repro.errors import ConfigurationError


class BatchWorkload(Workload):
    """A gang of independent single-threaded instances.

    Parameters
    ----------
    spec:
        Calibrated workload description.  ``spec.slots_per_unit``
        should be 8 for SPEC CPU2006 (two instances per VM, four VMs
        per unit).
    chunks:
        Number of equal chunks each instance's run is split into.
    """

    def __init__(self, spec: WorkloadSpec, *, chunks: int = 24) -> None:
        super().__init__(spec)
        if chunks <= 0:
            raise ConfigurationError("chunks must be positive")
        self.chunks = chunks

    def build_program(self, num_slots: int) -> List[Stage]:
        if num_slots <= 0:
            raise ConfigurationError("num_slots must be positive")
        return [
            Stage(
                name="batch",
                n_tasks=num_slots * self.chunks,
                task_time=self.spec.base_time / self.chunks,
                dynamic=False,
                sync_cost=0.0,
            )
        ]
