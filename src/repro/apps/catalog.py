"""Calibrated workload catalog (Table 1 / Table 4).

Each entry builds a :class:`~repro.apps.base.Workload` whose ground
truth is calibrated so the simulator reproduces the paper's observed
*shapes*:

* **Propagation class** (Figure 3) is set by the program structure:
  BSP with per-iteration collectives for the high-propagation MPI/NPB
  codes, a loosely-coupled shared-pool structure for M.Gems
  (proportional), and dynamic task queues for Hadoop/Spark (low).
* **Bubble scores** (Table 4) are the ``generated_pressure`` values,
  copied from the paper.
* **Sensitivity magnitudes** are chosen so the normalized execution
  times at pressure 8 with all nodes interfering land in the ranges
  Figure 3 reports (roughly 1.1x for Hadoop/Spark up to ~2.3x for
  M.milc / N.mg).
* **M.Gems** carries extra jitter, reproducing the paper's observation
  (Section 4.3) that its blocked-I/O behaviour makes it the least
  predictable workload.

Absolute execution times are synthetic; every reported result is
normalized, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.apps.base import (
    PropagationClass,
    Workload,
    WorkloadFamily,
    WorkloadSpec,
)
from repro.apps.batch import BatchWorkload
from repro.apps.bubble import BubbleWorkload
from repro.apps.graph import GraphTraversalWorkload
from repro.apps.mapreduce import MapReduceWorkload
from repro.apps.mpi import BSPWorkload, CollectiveType, LooselyCoupledWorkload
from repro.apps.paramserver import ParameterServerWorkload
from repro.apps.spark import SparkWorkload
from repro.cluster.contention import ContentionDomain, ExponentialSensitivity
from repro.errors import CatalogError


@dataclass(frozen=True)
class CatalogEntry:
    """One catalog row: full name, input size, and a workload factory."""

    name: str
    abbrev: str
    family: WorkloadFamily
    input_size: str
    factory: Callable[[], Workload]


def _spec(
    name: str,
    abbrev: str,
    family: WorkloadFamily,
    propagation: PropagationClass,
    *,
    score: float,
    max_slowdown: float,
    curvature: float = 0.3,
    threshold: float = 0.0,
    base_time: float,
    noise_cv: float = 0.06,
    master_factor: float = 1.0,
    slots_per_unit: int = 4,
    network_score: float = 0.0,
    network_max_slowdown: float = 0.0,
    network_curvature: float = 0.3,
    network_threshold: float = 0.0,
) -> WorkloadSpec:
    # network_max_slowdown == 0.0 (every paper workload) leaves the
    # NETWORK domain fields at their scalar-era defaults.
    network_sensitivity = None
    if network_max_slowdown > 0.0:
        network_sensitivity = ExponentialSensitivity(
            max_slowdown=network_max_slowdown,
            curvature=network_curvature,
            threshold=network_threshold,
        )
    return WorkloadSpec(
        name=name,
        abbrev=abbrev,
        family=family,
        propagation_class=propagation,
        sensitivity=ExponentialSensitivity(
            max_slowdown=max_slowdown, curvature=curvature, threshold=threshold
        ),
        generated_pressure=score,
        base_time=base_time,
        noise_cv=noise_cv,
        master_pressure_factor=master_factor,
        slots_per_unit=slots_per_unit,
        network_sensitivity=network_sensitivity,
        generated_network_pressure=network_score,
    )


def _bsp(spec: WorkloadSpec, iterations: int) -> Callable[[], Workload]:
    def factory() -> Workload:
        return BSPWorkload(
            spec, iterations=iterations, collective=CollectiveType.ALLREDUCE
        )

    return factory


def _mpi_high(
    name: str, abbrev: str, *, score: float, max_slowdown: float,
    base_time: float, iterations: int, family: WorkloadFamily,
    noise_cv: float = 0.06, threshold: float = 0.0,
) -> CatalogEntry:
    spec = _spec(
        name, abbrev, family, PropagationClass.HIGH,
        score=score, max_slowdown=max_slowdown, threshold=threshold,
        base_time=base_time, noise_cv=noise_cv,
    )
    size = "mref" if family is WorkloadFamily.SPEC_MPI else "class D"
    return CatalogEntry(name, abbrev, family, size, _bsp(spec, iterations))


def _gems_entry() -> CatalogEntry:
    # M.Gems: no allreduce/allgather, few barriers -> proportional
    # propagation; elevated noise models its blocked-I/O sensitivity to
    # co-runner CPU fluctuation (Section 4.3).
    spec = _spec(
        "113.GemsFDTD", "M.Gems", WorkloadFamily.SPEC_MPI,
        PropagationClass.PROPORTIONAL,
        score=2.4, max_slowdown=1.8, curvature=0.2,
        base_time=160.0, noise_cv=0.13,
    )

    def factory() -> Workload:
        return LooselyCoupledWorkload(spec, phases=4, chunks_per_slot=16)

    return CatalogEntry(
        "113.GemsFDTD", "M.Gems", WorkloadFamily.SPEC_MPI, "mref", factory
    )


def _hadoop_kmeans_entry() -> CatalogEntry:
    spec = _spec(
        "Kmeans", "H.KM", WorkloadFamily.HADOOP, PropagationClass.LOW,
        score=0.2, max_slowdown=1.15, curvature=0.05, threshold=0.5,
        base_time=150.0, noise_cv=0.09, master_factor=0.3,
    )

    def factory() -> Workload:
        return MapReduceWorkload(spec, rounds=8, map_tasks_per_slot=4)

    return CatalogEntry("Kmeans", "H.KM", WorkloadFamily.HADOOP, "75 MB", factory)


def _spark_entry(
    name: str, abbrev: str, input_size: str, *, score: float,
    max_slowdown: float, threshold: float, tasks_per_slot: int,
    stage_weights: Tuple[float, ...], base_time: float,
    curvature: float = 0.5,
) -> CatalogEntry:
    spec = _spec(
        name, abbrev, WorkloadFamily.SPARK, PropagationClass.LOW,
        score=score, max_slowdown=max_slowdown, curvature=curvature,
        threshold=threshold, base_time=base_time, noise_cv=0.07,
        master_factor=0.3,
    )

    def factory() -> Workload:
        return SparkWorkload(
            spec, stage_weights=stage_weights, tasks_per_slot=tasks_per_slot
        )

    return CatalogEntry(name, abbrev, WorkloadFamily.SPARK, input_size, factory)


def _batch_entry(
    name: str, abbrev: str, *, score: float, max_slowdown: float,
    base_time: float, curvature: float = 0.3, threshold: float = 0.0,
) -> CatalogEntry:
    spec = _spec(
        name, abbrev, WorkloadFamily.SPEC_CPU, PropagationClass.BATCH,
        score=score, max_slowdown=max_slowdown, curvature=curvature,
        threshold=threshold, base_time=base_time, noise_cv=0.05,
        slots_per_unit=8,  # two single-threaded instances per dual-core VM
    )

    def factory() -> Workload:
        return BatchWorkload(spec, chunks=24)

    return CatalogEntry(name, abbrev, WorkloadFamily.SPEC_CPU, "ref", factory)


def _paramserver_entry() -> CatalogEntry:
    # D.PS: data-parallel CNN training against a parameter server
    # (arXiv:2303.15763).  Network-dominant: gradients stream through
    # the cache (low compute sensitivity, low bubble score) but the
    # per-iteration push/pull saturates the uplink, so its network
    # score and network sensitivity are both high.  BSP structure ->
    # high propagation through the iteration barrier.
    spec = _spec(
        "ParamServerCNN", "D.PS", WorkloadFamily.DATACENTER,
        PropagationClass.HIGH,
        score=1.2, max_slowdown=1.10, curvature=0.1,
        base_time=130.0, noise_cv=0.06,
        network_score=5.5, network_max_slowdown=2.5,
        network_curvature=0.35,
    )

    def factory() -> Workload:
        return ParameterServerWorkload(spec, iterations=40, payload_chunks=1400.0)

    return CatalogEntry(
        "ParamServerCNN", "D.PS", WorkloadFamily.DATACENTER,
        "256 img/worker", factory,
    )


def _graph_entry() -> CatalogEntry:
    # D.BFS: level-synchronous graph traversal (arXiv:2303.15763).
    # Mixed class: irregular pointer chasing is cache-sensitive while
    # the per-level frontier exchange is link-sensitive; the dynamic
    # task queue keeps compute propagation proportional.
    spec = _spec(
        "GraphBFS", "D.BFS", WorkloadFamily.DATACENTER,
        PropagationClass.PROPORTIONAL,
        score=3.2, max_slowdown=1.50, curvature=0.3,
        base_time=115.0, noise_cv=0.08,
        network_score=2.8, network_max_slowdown=1.9,
        network_curvature=0.3,
    )

    def factory() -> Workload:
        return GraphTraversalWorkload(
            spec, levels=12, chunks_per_slot=8, frontier_chunks=2000.0
        )

    return CatalogEntry(
        "GraphBFS", "D.BFS", WorkloadFamily.DATACENTER,
        "scale-26 RMAT", factory,
    )


def _build_catalog() -> Dict[str, CatalogEntry]:
    entries: List[CatalogEntry] = [
        # -- SPEC MPI2007 (high propagation except GemsFDTD) ------------
        _mpi_high("104.milc", "M.milc", family=WorkloadFamily.SPEC_MPI,
                  score=4.3, max_slowdown=1.90, base_time=120.0, iterations=40),
        _mpi_high("107.leslie3d", "M.lesl", family=WorkloadFamily.SPEC_MPI,
                  score=3.9, max_slowdown=1.75, base_time=140.0, iterations=40),
        _gems_entry(),
        _mpi_high("126.lammps", "M.lmps", family=WorkloadFamily.SPEC_MPI,
                  score=1.0, max_slowdown=1.45, base_time=100.0, iterations=48,
                  threshold=0.5),
        _mpi_high("132.zeusmp2", "M.zeus", family=WorkloadFamily.SPEC_MPI,
                  score=1.4, max_slowdown=1.38, base_time=110.0, iterations=40),
        _mpi_high("137.lu", "M.lu", family=WorkloadFamily.SPEC_MPI,
                  score=4.6, max_slowdown=1.75, base_time=130.0, iterations=44),
        # -- NPB ---------------------------------------------------------
        _mpi_high("cg", "N.cg", family=WorkloadFamily.NPB,
                  score=3.9, max_slowdown=1.80, base_time=90.0, iterations=56),
        _mpi_high("mg", "N.mg", family=WorkloadFamily.NPB,
                  score=5.0, max_slowdown=1.95, base_time=105.0, iterations=48),
        # -- Hadoop -------------------------------------------------------
        _hadoop_kmeans_entry(),
        # -- Spark --------------------------------------------------------
        _spark_entry("PageRank", "S.PR", "1M vertices with 12M edges",
                     score=0.7, max_slowdown=1.30, threshold=0.5,
                     tasks_per_slot=2, curvature=0.25,
                     stage_weights=(1.0,) * 8, base_time=125.0),
        _spark_entry("CollaborativeFiltering", "S.CF", "30 users on 100 movies",
                     score=0.5, max_slowdown=1.35, threshold=3.5,
                     tasks_per_slot=2,
                     stage_weights=(1.0, 1.5, 1.5, 1.0, 1.0), base_time=95.0),
        _spark_entry("WordCount", "S.WC", "4.2GB",
                     score=0.3, max_slowdown=1.25, threshold=4.0,
                     tasks_per_slot=2,
                     stage_weights=(2.0, 1.0, 1.0), base_time=80.0),
        # -- SPEC CPU2006 batch co-runners ---------------------------------
        _batch_entry("403.gcc", "C.gcc", score=4.8, max_slowdown=1.60,
                     base_time=170.0),
        _batch_entry("429.mcf", "C.mcf", score=5.4, max_slowdown=2.60,
                     base_time=200.0),
        _batch_entry("436.cactusADM", "C.cact", score=3.8, max_slowdown=1.70,
                     base_time=180.0),
        _batch_entry("450.soplex", "C.sopl", score=4.9, max_slowdown=2.10,
                     base_time=160.0),
        _batch_entry("462.libquantum", "C.libq", score=6.6, max_slowdown=1.90,
                     base_time=150.0),
        _batch_entry("483.xalancbmk", "C.xbmk", score=4.3, max_slowdown=1.80,
                     base_time=140.0),
        # -- Datacenter network-bound archetypes (arXiv:2303.15763) --------
        _paramserver_entry(),
        _graph_entry(),
    ]
    return {entry.abbrev: entry for entry in entries}


_CATALOG: Dict[str, CatalogEntry] = _build_catalog()

#: All catalog abbreviations in Table 1 order.
ALL_WORKLOADS: Tuple[str, ...] = tuple(_CATALOG)

#: The 12 distributed parallel workloads (Sections 3-4).  The
#: datacenter archetypes are deliberately excluded so the paper-anchored
#: experiments keep iterating exactly Table 1's distributed set.
DISTRIBUTED_WORKLOADS: Tuple[str, ...] = tuple(
    abbrev
    for abbrev, entry in _CATALOG.items()
    if entry.family
    not in (WorkloadFamily.SPEC_CPU, WorkloadFamily.DATACENTER)
)

#: The 6 SPEC CPU2006 batch co-runners (Section 5).
BATCH_WORKLOADS: Tuple[str, ...] = tuple(
    abbrev
    for abbrev, entry in _CATALOG.items()
    if entry.family is WorkloadFamily.SPEC_CPU
)

#: The network-bound datacenter archetypes (NETWORK contention domain).
NETWORK_WORKLOADS: Tuple[str, ...] = tuple(
    abbrev
    for abbrev, entry in _CATALOG.items()
    if entry.family is WorkloadFamily.DATACENTER
)


def catalog_entry(abbrev: str) -> CatalogEntry:
    """Return the catalog entry for ``abbrev``.

    Raises
    ------
    CatalogError
        If the abbreviation is unknown.
    """
    try:
        return _CATALOG[abbrev]
    except KeyError:
        raise CatalogError(
            f"unknown workload {abbrev!r}; known: {', '.join(_CATALOG)}"
        ) from None


def get_workload(abbrev: str) -> Workload:
    """Instantiate a fresh workload object for ``abbrev``."""
    return catalog_entry(abbrev).factory()


def make_bubble(
    level: float, *, domain: ContentionDomain = ContentionDomain.COMPUTE
) -> BubbleWorkload:
    """Instantiate a bubble interference generator at ``level``.

    ``domain`` selects the resource the bubble exercises: the classic
    cache/memory-bandwidth thrasher (COMPUTE, the default) or the
    network-noise traffic generator (NETWORK).
    """
    return BubbleWorkload(level, domain=domain)


def table1_rows() -> List[Tuple[str, str, str, str]]:
    """Rows of Table 1: (type, name, size, abbreviation)."""
    return [
        (entry.family.value, entry.name, entry.input_size, entry.abbrev)
        for entry in _CATALOG.values()
    ]
