"""The bubble interference generator.

``bubble`` is the paper's controlled interference source (Section 2.1,
after Mars et al.): a small program that exercises the memory subsystem
at a configurable intensity, used both to *apply* known pressure during
profiling runs and to *measure* the pressure a target application
generates (its bubble score) from the bubble's own slowdown.

In the simulator a bubble is a *passive* workload: it exerts
``level`` pressure on its node for as long as any active co-runner is
executing, and its "reported throughput" — used for bubble-score
measurement — is the reciprocal of its own slowdown under the node
pressure it experiences.

The bubble is domain-parametric
(:class:`~repro.cluster.contention.ContentionDomain`): in its
network-noise mode it is a traffic generator instead of a cache
thrasher — it saturates the host's uplink at ``level`` *link* pressure
while exerting no memory-subsystem pressure at all, and its reported
throughput reacts to link pressure only.  Network-domain profiling and
network-score measurement use it exactly the way compute profiling
uses the classic bubble.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import (
    PropagationClass,
    Stage,
    Workload,
    WorkloadFamily,
    WorkloadSpec,
)
from repro.cluster.contention import ContentionDomain, ExponentialSensitivity
from repro.errors import ConfigurationError
from repro.units import MAX_PRESSURE

#: Slowdown of the bubble program itself at maximum co-runner pressure.
#: The bubble is deliberately very sensitive — it must *detect*
#: pressure, so its working set is sized to react to any cache theft.
BUBBLE_MAX_SLOWDOWN: float = 3.0


def bubble_sensitivity() -> ExponentialSensitivity:
    """The bubble program's own pressure-response function."""
    return ExponentialSensitivity(
        max_slowdown=BUBBLE_MAX_SLOWDOWN, curvature=0.25, threshold=0.0
    )


class BubbleWorkload(Workload):
    """A pressure generator pinned to nodes during profiling runs.

    Parameters
    ----------
    level:
        Pressure exerted on the host node (COMPUTE domain) or its
        uplink (NETWORK domain), in ``(0, MAX_PRESSURE]``.
    slots_per_unit:
        Slots the bubble occupies per unit (it fills the co-runner
        half of a host: 4 VMs).
    domain:
        Contention domain the bubble exercises.  COMPUTE (the default)
        is the scalar-era cache/memory-bandwidth bubble; NETWORK is
        the network-noise mode, which injects *link* pressure instead
        of node pressure and whose own sensitivity reads link
        contention.
    """

    def __init__(
        self,
        level: float,
        *,
        slots_per_unit: int = 4,
        domain: ContentionDomain = ContentionDomain.COMPUTE,
    ) -> None:
        if not 0.0 < level <= MAX_PRESSURE:
            raise ConfigurationError(
                f"bubble level must be in (0, {MAX_PRESSURE}], got {level!r}"
            )
        domain = ContentionDomain.parse(domain)
        if domain is ContentionDomain.NETWORK:
            spec = WorkloadSpec(
                name=f"netbubble@{level:g}",
                abbrev=f"netbubble{level:g}",
                family=WorkloadFamily.SYNTHETIC,
                propagation_class=PropagationClass.BATCH,
                sensitivity=bubble_sensitivity(),
                generated_pressure=0.0,
                base_time=1.0,
                noise_cv=0.0,
                master_pressure_factor=1.0,
                slots_per_unit=slots_per_unit,
                network_sensitivity=bubble_sensitivity(),
                generated_network_pressure=float(level),
            )
        else:
            spec = WorkloadSpec(
                name=f"bubble@{level:g}",
                abbrev=f"bubble{level:g}",
                family=WorkloadFamily.SYNTHETIC,
                propagation_class=PropagationClass.BATCH,
                sensitivity=bubble_sensitivity(),
                generated_pressure=float(level),
                base_time=1.0,
                noise_cv=0.0,
                master_pressure_factor=1.0,
                slots_per_unit=slots_per_unit,
            )
        super().__init__(spec)
        self.level = float(level)
        self.domain = domain

    @property
    def is_passive(self) -> bool:
        """Bubbles run exactly as long as the active workloads do."""
        return True

    def build_program(self, num_slots: int) -> List[Stage]:
        """Passive workloads execute no tasks of their own."""
        return []
