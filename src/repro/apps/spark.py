"""Spark-style stage-DAG workloads.

Spark jobs execute a DAG of stages whose tasks are scheduled
dynamically onto executors, like MapReduce, but with *coarser* tasks:
a stage typically runs only a couple of task waves per executor.  With
coarse tasks the last wave on the most-interfered nodes straggles the
stage, so the execution time is governed by the nodes under the *worst*
pressure while mildly-interfered nodes (below the workload's LLC
sensitivity threshold) contribute nothing — which is why the ``N max``
heterogeneity policy fits S.WC and S.CF best in Table 2.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.apps.base import Stage, Workload, WorkloadSpec
from repro.cluster.topology import SwitchTopology
from repro.errors import ConfigurationError


class SparkWorkload(Workload):
    """Stage-DAG analytics job (WordCount, PageRank, ALS).

    Parameters
    ----------
    spec:
        Calibrated workload description.
    stage_weights:
        Relative compute weight of each stage of the DAG (length is
        the number of stages); e.g. PageRank supplies one weight per
        superstep.
    tasks_per_slot:
        Task waves per executor per stage; small values mean coarse
        tasks and straggler-bound stages.
    shuffle_stages:
        Indices of stages followed by a full shuffle; ``None`` means
        every stage shuffles (wide dependencies).
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        stage_weights: Sequence[float] = (1.0, 1.0, 1.0, 1.0, 1.0, 1.0),
        tasks_per_slot: int = 2,
        shuffle_stages: Sequence[int] | None = None,
        topology: SwitchTopology | None = None,
    ) -> None:
        super().__init__(spec)
        if not stage_weights:
            raise ConfigurationError("stage_weights must be non-empty")
        if any(w <= 0 for w in stage_weights):
            raise ConfigurationError("stage weights must be positive")
        if tasks_per_slot <= 0:
            raise ConfigurationError("tasks_per_slot must be positive")
        self.stage_weights = tuple(float(w) for w in stage_weights)
        self.tasks_per_slot = tasks_per_slot
        if shuffle_stages is None:
            shuffle_stages = range(len(self.stage_weights))
        self.shuffle_stages = frozenset(shuffle_stages)
        self.topology = topology or SwitchTopology()

    def build_program(self, num_slots: int) -> List[Stage]:
        if num_slots <= 0:
            raise ConfigurationError("num_slots must be positive")
        # base_time is the target wall time per slot: a stage of weight
        # share w runs tasks_per_slot waves of tasks sized w/waves.
        weight_total = sum(self.stage_weights)
        n_tasks = num_slots * self.tasks_per_slot
        shuffle = self.topology.shuffle_cost(num_slots)
        stages: List[Stage] = []
        for i, weight in enumerate(self.stage_weights):
            stage_time = self.spec.base_time * weight / weight_total
            stages.append(
                Stage(
                    name=f"stage{i}",
                    n_tasks=n_tasks,
                    task_time=stage_time / self.tasks_per_slot,
                    dynamic=True,
                    sync_cost=shuffle if i in self.shuffle_stages else 0.0,
                )
            )
        return stages
