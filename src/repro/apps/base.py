"""Application behaviour model.

The paper's central observation (Section 3.2) is that an application's
*synchronization structure* determines how local interference
propagates to its final latency: allreduce/barrier-coupled codes stall
globally on one slow node (high propagation), loosely-coupled codes
degrade with aggregate throughput (proportional), and elastic
task-queue frameworks route work away from slow nodes (low
propagation).

This module expresses that structure explicitly.  Every workload
compiles to a *program*: an ordered list of :class:`Stage` objects.  A
stage owns a bag of tasks that execute on the application's slots
(one slot per VM); the stage boundary is a barrier.  Two knobs encode
the synchronization structure:

* ``dynamic`` — tasks are pulled from a shared queue (elastic
  frameworks and loosely-coupled codes) instead of being statically
  bound round-robin to slots (BSP/MPI ranks).
* the stage granularity — a BSP code is *many* stages of one task per
  slot (a barrier per iteration), while an independent batch job is a
  *single* stage of many chunks per slot (no intermediate barrier).

The discrete-event executor (:mod:`repro.sim.execution`) interprets
programs; task durations there are scaled by the workload's
:class:`~repro.cluster.contention.SensitivityFunction` applied to the
pressure present on the slot's node.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from typing import Optional

from repro.cluster.contention import SensitivityFunction
from repro.errors import ConfigurationError
from repro.units import validate_pressure


class WorkloadFamily(enum.Enum):
    """Benchmark suite the workload comes from (Table 1)."""

    SPEC_MPI = "SPEC MPI2007"
    NPB = "NPB"
    HADOOP = "HADOOP"
    SPARK = "SPARK"
    SPEC_CPU = "SPEC CPU2006"
    SYNTHETIC = "SYNTHETIC"
    #: Network-bound datacenter archetypes (after the DL/graph/HPC
    #: characterization study, arXiv:2303.15763).  Kept out of the
    #: paper's 12 distributed workloads so Table-anchored experiments
    #: are unchanged.
    DATACENTER = "DATACENTER"


class PropagationClass(enum.Enum):
    """Interference-propagation taxonomy from Section 3.2."""

    HIGH = "high"
    PROPORTIONAL = "proportional"
    LOW = "low"
    #: Single-node batch co-runners (SPEC CPU2006); propagation does not
    #: apply because instances are independent.
    BATCH = "batch"


@dataclass(frozen=True)
class Stage:
    """One barrier-delimited phase of a program.

    Parameters
    ----------
    name:
        Human-readable label (diagnostics and traces).
    n_tasks:
        Number of tasks in the stage; must be positive.
    task_time:
        Base (uncontended, jitter-free) duration of one task.
    dynamic:
        If true, tasks are dispatched from a shared queue to whichever
        slot frees up first; otherwise task ``i`` is bound to slot
        ``i % num_slots`` and a slot runs its tasks in order.
    sync_cost:
        Fixed cost added once when the stage's last task finishes,
        modelling the collective (allreduce / barrier / shuffle).
    """

    name: str
    n_tasks: int
    task_time: float
    dynamic: bool = False
    sync_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.n_tasks <= 0:
            raise ConfigurationError(f"stage {self.name!r}: n_tasks must be positive")
        if self.task_time <= 0:
            raise ConfigurationError(f"stage {self.name!r}: task_time must be positive")
        if self.sync_cost < 0:
            raise ConfigurationError(f"stage {self.name!r}: sync_cost must be >= 0")

    @property
    def total_work(self) -> float:
        """Aggregate base compute time of the stage's tasks."""
        return self.n_tasks * self.task_time


@dataclass(frozen=True)
class WorkloadSpec:
    """Static, calibration-bearing description of a workload.

    This is the ground truth the interference model has to *discover*
    by profiling: the model never reads these fields, only observed
    execution times.

    Parameters
    ----------
    name:
        Full benchmark name, e.g. ``"126.lammps"``.
    abbrev:
        Paper abbreviation, e.g. ``"M.lmps"`` (Table 1).
    family:
        Benchmark suite.
    propagation_class:
        Ground-truth propagation taxonomy entry (for documentation and
        calibration tests; not consumed by the model).
    sensitivity:
        Pressure -> local slowdown response of the workload's tasks.
    generated_pressure:
        Pressure this workload exerts on co-runners sharing a node
        (its ground-truth bubble score, Table 4 scale).
    base_time:
        Approximate solo execution time in simulated seconds.
    noise_cv:
        Coefficient of variation of per-task duration jitter.
    master_pressure_factor:
        Scale of the pressure generated on the node hosting slot 0.
        1.0 for MPI codes (master computes like slaves); < 1 for
        Hadoop/Spark whose master schedules but does not process
        (Section 3.4).
    slots_per_unit:
        Execution slots contributed by one placed VM unit.  One per VM
        for distributed codes; two per VM for the single-threaded SPEC
        CPU co-runners (two instances per dual-core VM, Section 5.1).
    network_sensitivity:
        Link pressure -> slowdown response of the workload's
        *collectives* (the NETWORK contention domain).  ``None`` — the
        scalar-era default for every paper workload — means the
        workload's communication is insensitive to link contention and
        the executor never evaluates the network path for it.
    generated_network_pressure:
        Pressure this workload's flows exert on the uplink of every
        node it occupies (its ground-truth network score, same 0-8
        scale).  0.0 keeps the link flat.
    """

    name: str
    abbrev: str
    family: WorkloadFamily
    propagation_class: PropagationClass
    sensitivity: SensitivityFunction
    generated_pressure: float
    base_time: float
    noise_cv: float = 0.05
    master_pressure_factor: float = 1.0
    slots_per_unit: int = 4
    network_sensitivity: Optional[SensitivityFunction] = None
    generated_network_pressure: float = 0.0

    def __post_init__(self) -> None:
        validate_pressure(self.generated_pressure, name="generated_pressure")
        validate_pressure(
            self.generated_network_pressure,
            name="generated_network_pressure",
        )
        if self.base_time <= 0:
            raise ConfigurationError("base_time must be positive")
        if self.noise_cv < 0:
            raise ConfigurationError("noise_cv must be non-negative")
        if not 0.0 <= self.master_pressure_factor <= 1.0:
            raise ConfigurationError("master_pressure_factor must be in [0, 1]")
        if self.slots_per_unit <= 0:
            raise ConfigurationError("slots_per_unit must be positive")


class Workload:
    """Behavioural model of one application.

    Subclasses define the program structure; the spec carries the
    calibration.  Workload objects are immutable and reusable across
    simulations.
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec

    @property
    def name(self) -> str:
        """Paper abbreviation of the workload (unique catalog key)."""
        return self.spec.abbrev

    @property
    def is_passive(self) -> bool:
        """Whether the workload runs only as long as co-runners do.

        Passive workloads (the bubble generator) have no work of their
        own; the executor terminates them when every active workload
        has finished.
        """
        return False

    def build_program(self, num_slots: int) -> List[Stage]:
        """Compile the workload to stages for a deployment of ``num_slots``.

        Parameters
        ----------
        num_slots:
            Total execution slots across all the workload's VM units.

        Returns
        -------
        list of Stage
            The program; empty only for passive workloads.
        """
        raise NotImplementedError

    def generated_pressure_for(self, unit_index: int) -> float:
        """Pressure one placed VM unit exerts on its node.

        Unit 0 hosts the application master; for frameworks whose
        master schedules without processing data (Hadoop/Spark,
        Section 3.4) it exerts a discounted pressure.

        Parameters
        ----------
        unit_index:
            Index of the VM unit within the workload's deployment.
        """
        pressure = self.spec.generated_pressure
        if unit_index == 0:
            pressure *= self.spec.master_pressure_factor
        return pressure

    def generated_network_pressure_for(self, unit_index: int) -> float:
        """Link pressure one placed VM unit exerts on its node's uplink.

        The master unit of a framework whose master only schedules
        moves correspondingly little data, so the same discount
        applies as for compute pressure.
        """
        pressure = self.spec.generated_network_pressure
        if unit_index == 0:
            pressure *= self.spec.master_pressure_factor
        return pressure

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.spec.abbrev!r})"


def total_program_work(program: List[Stage]) -> float:
    """Aggregate base compute time across a program's stages."""
    return sum(stage.total_work for stage in program)
