"""Distributed graph traversal (mixed-sensitivity archetype).

Level-synchronous BFS-style traversal, the second archetype drawn from
the DL/graph/HPC characterization study (arXiv:2303.15763): its
per-vertex work is irregular pointer chasing (cache-sensitive, so the
COMPUTE domain matters) while every level boundary exchanges the next
frontier with all peers (link-sensitive, so the NETWORK domain matters
too).  Neither resource dominates — the *mixed* class.

Frontier sizes vary wildly between levels, so tasks are pulled from a
shared queue (``dynamic=True``): a slowed worker processes fewer
vertices while others pick up the slack, which keeps compute-side
propagation moderate even though the level barrier is global.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import Stage, Workload, WorkloadSpec
from repro.cluster.topology import SwitchTopology
from repro.errors import ConfigurationError


class GraphTraversalWorkload(Workload):
    """Level-synchronous traversal with per-level frontier exchange.

    Parameters
    ----------
    spec:
        Calibrated workload description (compute *and* network
        sensitivities).
    levels:
        Traversal depth: one stage (and one frontier exchange) per
        level.
    chunks_per_slot:
        Average frontier chunks each slot processes per level.
    frontier_chunks:
        Frontier payload per exchange, in units of the base star
        collective — smaller than a gradient push but far from a bare
        barrier.
    topology:
        Interconnect used to cost the exchange.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        levels: int = 12,
        chunks_per_slot: int = 8,
        frontier_chunks: float = 150.0,
        topology: SwitchTopology | None = None,
    ) -> None:
        super().__init__(spec)
        if levels <= 0:
            raise ConfigurationError("levels must be positive")
        if chunks_per_slot <= 0:
            raise ConfigurationError("chunks_per_slot must be positive")
        if frontier_chunks <= 0:
            raise ConfigurationError("frontier_chunks must be positive")
        self.levels = levels
        self.chunks_per_slot = chunks_per_slot
        self.frontier_chunks = frontier_chunks
        self.topology = topology or SwitchTopology()

    def build_program(self, num_slots: int) -> List[Stage]:
        if num_slots <= 0:
            raise ConfigurationError("num_slots must be positive")
        n_tasks = num_slots * self.chunks_per_slot
        task_time = self.spec.base_time / (self.levels * self.chunks_per_slot)
        sync = self.topology.collective_cost(num_slots) * self.frontier_chunks
        return [
            Stage(
                name=f"level{i}",
                n_tasks=n_tasks,
                task_time=task_time,
                dynamic=True,
                sync_cost=sync,
            )
            for i in range(self.levels)
        ]
