"""Parameter-server distributed training (network-dominant archetype).

The DL/graph/HPC characterization study (arXiv:2303.15763) shows that
data-parallel training with a parameter server is the canonical
*network-dominant* workload: per-iteration gradient push/pull moves
megabytes per worker through the interconnect, so link contention
inflates the communication phase long before cache contention touches
the (streaming, cache-friendly) compute phase.

The program structure is BSP-like — one statically-partitioned compute
stage per training iteration, closed by a gradient exchange — but the
collective carries a large payload: its cost is the star collective
cost times ``payload_chunks`` (the gradient size expressed in units of
the base collective).  The executor scales that synchronization cost by
the workload's *network* sensitivity applied to the pressure on its
most-loaded uplink, which is where this archetype hurts.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import Stage, Workload, WorkloadSpec
from repro.cluster.topology import SwitchTopology
from repro.errors import ConfigurationError


class ParameterServerWorkload(Workload):
    """Data-parallel trainer pushing gradients through a central server.

    Parameters
    ----------
    spec:
        Calibrated workload description; its ``network_sensitivity``
        governs how the gradient exchange reacts to link pressure.
    iterations:
        Training iterations (compute + push/pull rounds).
    payload_chunks:
        Gradient payload per exchange, in units of the base star
        collective — the knob that makes communication a first-order
        cost instead of the microsecond barrier of the MPI codes.
    topology:
        Interconnect used to cost the exchange.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        iterations: int = 40,
        payload_chunks: float = 700.0,
        topology: SwitchTopology | None = None,
    ) -> None:
        super().__init__(spec)
        if iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if payload_chunks <= 0:
            raise ConfigurationError("payload_chunks must be positive")
        self.iterations = iterations
        self.payload_chunks = payload_chunks
        self.topology = topology or SwitchTopology()

    def build_program(self, num_slots: int) -> List[Stage]:
        if num_slots <= 0:
            raise ConfigurationError("num_slots must be positive")
        task_time = self.spec.base_time / self.iterations
        # Gradient push/pull: every worker's full payload crosses the
        # star per iteration.
        sync = self.topology.collective_cost(num_slots) * self.payload_chunks
        return [
            Stage(
                name=f"train{i}",
                n_tasks=num_slots,
                task_time=task_time,
                dynamic=False,
                sync_cost=sync,
            )
            for i in range(self.iterations)
        ]
