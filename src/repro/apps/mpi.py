"""MPI-style distributed workloads (SPEC MPI2007 and NPB).

Two synchronization structures appear in the paper's MPI workloads
(Section 3.2):

* :class:`BSPWorkload` — the common case: every iteration ends with an
  allreduce/allgather or barrier, so per-iteration time is the *max*
  over ranks.  One node under interference stalls everyone: the *high
  propagation* class (M.milc, M.lesl, M.lmps, M.zeus, M.lu, N.cg,
  N.mg).
* :class:`LooselyCoupledWorkload` — M.Gems uses no allreduce/allgather
  and few barriers, so delays do not propagate; aggregate progress
  follows the sum of per-node throughputs and degradation is roughly
  proportional to the number of interfering nodes.  We model the work
  as chunks drawn from a shared pool within each of a few long phases.
"""

from __future__ import annotations

import enum
from typing import List

from repro.apps.base import Stage, Workload, WorkloadSpec
from repro.cluster.topology import SwitchTopology
from repro.errors import ConfigurationError


class CollectiveType(enum.Enum):
    """Collective operation closing each BSP iteration."""

    ALLREDUCE = "allreduce"
    BARRIER = "barrier"
    NONE = "none"


class BSPWorkload(Workload):
    """Bulk-synchronous-parallel iterative code (allreduce per step).

    Parameters
    ----------
    spec:
        Calibrated workload description.
    iterations:
        Number of compute/communicate iterations.
    collective:
        Collective closing each iteration.
    topology:
        Interconnect used to cost the collective.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        iterations: int = 50,
        collective: CollectiveType = CollectiveType.ALLREDUCE,
        topology: SwitchTopology | None = None,
    ) -> None:
        super().__init__(spec)
        if iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        self.iterations = iterations
        self.collective = collective
        self.topology = topology or SwitchTopology()

    def _collective_cost(self, num_slots: int) -> float:
        if self.collective is CollectiveType.NONE:
            return 0.0
        cost = self.topology.collective_cost(num_slots)
        if self.collective is CollectiveType.BARRIER:
            cost *= 0.5  # barriers carry no payload
        return cost

    def build_program(self, num_slots: int) -> List[Stage]:
        if num_slots <= 0:
            raise ConfigurationError("num_slots must be positive")
        task_time = self.spec.base_time / self.iterations
        sync = self._collective_cost(num_slots)
        return [
            Stage(
                name=f"iter{i}",
                n_tasks=num_slots,
                task_time=task_time,
                dynamic=False,
                sync_cost=sync,
            )
            for i in range(self.iterations)
        ]


class LooselyCoupledWorkload(Workload):
    """Few-collective MPI code with redistributable work (M.Gems).

    The work of each phase is split into many chunks pulled from a
    shared pool, so a slowed node simply completes fewer chunks while
    fast nodes pick up the slack — aggregate throughput, not the
    slowest node, sets the pace.

    Parameters
    ----------
    spec:
        Calibrated workload description.
    phases:
        Number of long phases separated by (rare) barriers.
    chunks_per_slot:
        Work granularity: average chunks each slot processes per phase.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        phases: int = 4,
        chunks_per_slot: int = 16,
        topology: SwitchTopology | None = None,
    ) -> None:
        super().__init__(spec)
        if phases <= 0:
            raise ConfigurationError("phases must be positive")
        if chunks_per_slot <= 0:
            raise ConfigurationError("chunks_per_slot must be positive")
        self.phases = phases
        self.chunks_per_slot = chunks_per_slot
        self.topology = topology or SwitchTopology()

    def build_program(self, num_slots: int) -> List[Stage]:
        if num_slots <= 0:
            raise ConfigurationError("num_slots must be positive")
        n_tasks = num_slots * self.chunks_per_slot
        task_time = self.spec.base_time / (self.phases * self.chunks_per_slot)
        sync = self.topology.collective_cost(num_slots) * 0.5
        return [
            Stage(
                name=f"phase{i}",
                n_tasks=n_tasks,
                task_time=task_time,
                dynamic=True,
                sync_cost=sync,
            )
            for i in range(self.phases)
        ]
