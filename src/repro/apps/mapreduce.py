"""Hadoop-style MapReduce workloads.

MapReduce frameworks dispatch map and reduce tasks from a central
scheduler to whichever slot frees up first, so work naturally drains
away from nodes slowed by interference.  Combined with the modest LLC /
memory-bandwidth footprint of the paper's Hadoop job (H.KM), this
yields the *low propagation* class of Section 3.2.

A job is ``rounds`` repetitions (K-means iterations) of a map stage, a
shuffle, and a reduce stage.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import Stage, Workload, WorkloadSpec
from repro.cluster.topology import SwitchTopology
from repro.errors import ConfigurationError


class MapReduceWorkload(Workload):
    """Iterative MapReduce job (e.g. Hadoop K-means).

    Parameters
    ----------
    spec:
        Calibrated workload description.
    rounds:
        Number of map/shuffle/reduce rounds (K-means iterations).
    map_tasks_per_slot:
        Map-task granularity; larger values give the scheduler more
        freedom to rebalance, increasing interference resilience.
    reduce_tasks_per_slot:
        Reduce-task granularity (reduces are fewer and coarser).
    map_fraction:
        Share of each round's compute time spent in the map stage.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        rounds: int = 8,
        map_tasks_per_slot: int = 4,
        reduce_tasks_per_slot: int = 1,
        map_fraction: float = 0.75,
        topology: SwitchTopology | None = None,
    ) -> None:
        super().__init__(spec)
        if rounds <= 0:
            raise ConfigurationError("rounds must be positive")
        if map_tasks_per_slot <= 0 or reduce_tasks_per_slot <= 0:
            raise ConfigurationError("tasks per slot must be positive")
        if not 0.0 < map_fraction < 1.0:
            raise ConfigurationError("map_fraction must be in (0, 1)")
        self.rounds = rounds
        self.map_tasks_per_slot = map_tasks_per_slot
        self.reduce_tasks_per_slot = reduce_tasks_per_slot
        self.map_fraction = map_fraction
        self.topology = topology or SwitchTopology()

    def build_program(self, num_slots: int) -> List[Stage]:
        if num_slots <= 0:
            raise ConfigurationError("num_slots must be positive")
        # base_time is the target *wall* time per slot, so a stage that
        # should take w seconds with every slot busy carries w/slot of
        # work per task wave: task_time = stage_time / tasks_per_slot.
        round_time = self.spec.base_time / self.rounds
        map_total = round_time * self.map_fraction
        reduce_total = round_time - map_total
        map_tasks = num_slots * self.map_tasks_per_slot
        reduce_tasks = num_slots * self.reduce_tasks_per_slot
        shuffle = self.topology.shuffle_cost(num_slots)
        stages: List[Stage] = []
        for r in range(self.rounds):
            stages.append(
                Stage(
                    name=f"map{r}",
                    n_tasks=map_tasks,
                    task_time=map_total / self.map_tasks_per_slot,
                    dynamic=True,
                    sync_cost=shuffle,
                )
            )
            stages.append(
                Stage(
                    name=f"reduce{r}",
                    n_tasks=reduce_tasks,
                    task_time=reduce_total / self.reduce_tasks_per_slot,
                    dynamic=True,
                    sync_cost=0.0,
                )
            )
        return stages
