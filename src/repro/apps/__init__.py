"""Application behaviour models and the Table 1 workload catalog."""

from repro.apps.base import (
    PropagationClass,
    Stage,
    Workload,
    WorkloadFamily,
    WorkloadSpec,
    total_program_work,
)
from repro.apps.batch import BatchWorkload
from repro.apps.bubble import BubbleWorkload, bubble_sensitivity
from repro.apps.catalog import (
    ALL_WORKLOADS,
    BATCH_WORKLOADS,
    DISTRIBUTED_WORKLOADS,
    NETWORK_WORKLOADS,
    CatalogEntry,
    catalog_entry,
    get_workload,
    make_bubble,
    table1_rows,
)
from repro.apps.graph import GraphTraversalWorkload
from repro.apps.mapreduce import MapReduceWorkload
from repro.apps.mpi import BSPWorkload, CollectiveType, LooselyCoupledWorkload
from repro.apps.paramserver import ParameterServerWorkload
from repro.apps.spark import SparkWorkload

__all__ = [
    "ALL_WORKLOADS",
    "BATCH_WORKLOADS",
    "BSPWorkload",
    "BatchWorkload",
    "BubbleWorkload",
    "CatalogEntry",
    "CollectiveType",
    "DISTRIBUTED_WORKLOADS",
    "GraphTraversalWorkload",
    "LooselyCoupledWorkload",
    "MapReduceWorkload",
    "NETWORK_WORKLOADS",
    "ParameterServerWorkload",
    "PropagationClass",
    "SparkWorkload",
    "Stage",
    "Workload",
    "WorkloadFamily",
    "WorkloadSpec",
    "bubble_sensitivity",
    "catalog_entry",
    "get_workload",
    "make_bubble",
    "table1_rows",
    "total_program_work",
]
