"""Deprecated: the EC2 environment moved to :mod:`repro.providers.ec2`.

This package is a warn-once compatibility shim.  The Section 6
validation environment now lives in the provider registry (it is the
``ec2`` capacity provider); import from :mod:`repro.providers.ec2` (or
:mod:`repro.providers`) instead.
"""

from __future__ import annotations

import warnings

#: Names this shim forwards to :mod:`repro.providers.ec2`.
_FORWARDED = (
    "EC2_COUNTS",
    "EC2_INSTANCE_VCPUS",
    "EC2_NUM_INSTANCES",
    "EC2_POLICY_SAMPLES",
    "EC2_WORKLOADS",
    "EC2Provider",
    "ec2_cluster_spec",
    "ec2_counts",
    "make_ec2_runner",
)

__all__ = list(_FORWARDED)

#: Symbols whose deprecation warning has already fired (one per symbol).
_WARNED: set = set()


def __getattr__(name: str):
    """Warn-once forwarding to :mod:`repro.providers.ec2`.

    Identity-preserving: the resolved object is cached in module
    globals, so repeated imports return the same object without
    re-warning.
    """
    if name not in _FORWARDED:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    if name not in _WARNED:
        _WARNED.add(name)
        warnings.warn(
            f"importing {name!r} from 'repro.ec2' is deprecated; use "
            f"'from repro.providers.ec2 import {name}' instead",
            DeprecationWarning,
            stacklevel=2,
        )
    import repro.providers.ec2 as _new

    value = getattr(_new, name)
    globals()[name] = value  # cache: later lookups skip __getattr__
    return value
