"""Amazon EC2 scale-out validation environment (Section 6)."""

from repro.ec2.environment import (
    EC2_COUNTS,
    EC2_NUM_INSTANCES,
    EC2_POLICY_SAMPLES,
    EC2_WORKLOADS,
    ec2_cluster_spec,
    ec2_counts,
    make_ec2_runner,
)

__all__ = [
    "EC2_COUNTS",
    "EC2_NUM_INSTANCES",
    "EC2_POLICY_SAMPLES",
    "EC2_WORKLOADS",
    "ec2_cluster_spec",
    "ec2_counts",
    "make_ec2_runner",
]
