"""Deprecated: this module moved to :mod:`repro.providers.ec2`.

Warn-once compatibility shim; see :mod:`repro.ec2` for the list of
forwarded names.
"""

from __future__ import annotations

import warnings

_FORWARDED = (
    "EC2_COUNTS",
    "EC2_INSTANCE_VCPUS",
    "EC2_NUM_INSTANCES",
    "EC2_POLICY_SAMPLES",
    "EC2_WORKLOADS",
    "EC2Provider",
    "ec2_cluster_spec",
    "ec2_counts",
    "make_ec2_runner",
)

__all__ = list(_FORWARDED)

_WARNED: set = set()


def __getattr__(name: str):
    """Warn-once forwarding to :mod:`repro.providers.ec2`."""
    if name not in _FORWARDED:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    if name not in _WARNED:
        _WARNED.add(name)
        warnings.warn(
            f"importing {name!r} from 'repro.ec2.environment' is "
            f"deprecated; use 'from repro.providers.ec2 import {name}' "
            f"instead",
            DeprecationWarning,
            stacklevel=2,
        )
    import repro.providers.ec2 as _new

    value = getattr(_new, name)
    globals()[name] = value
    return value
