"""The curated, stable public API surface.

Everything a consumer of this reproduction needs is re-exported here,
grouped by concern, and the set is intentionally small enough to keep
stable across releases:

* **Measurement** — :class:`ClusterRunner` (the oracle),
  :class:`MeasurementRequest` batches, the persistent
  :class:`MeasurementCache`.
* **Model building & prediction** — :func:`build_model` /
  :func:`build_batch_profiles` / :func:`build_network_profiles`, the
  :class:`InterferenceModel` (whose
  :meth:`~repro.core.model.InterferenceModel.predict` is the single
  scalar prediction entry point and whose
  :meth:`~repro.core.model.InterferenceModel.predict_batch` scores
  many requests through the vectorized, bit-identical
  :class:`PredictionRequest` / kernel-snapshot path — see the "Batch
  prediction" section of ``docs/performance.md``), persistence via
  :func:`load_model` / :func:`save_model`, the
  :class:`NaiveProportionalModel` baseline, and the
  :class:`OnlineModel` refinement wrapper.  Both prediction entry
  points take a ``domain`` keyword selecting the contention resource
  (:class:`ContentionDomain`); omitting it is the scalar-era
  compute-only call and stays bit-identical.
* **Placement** — :class:`Placement` / :class:`InstanceSpec`, the
  annealing placers, and QoS constraints.
* **Service** — the online :class:`ConsolidationService` and its
  traffic, config, telemetry, and crash-safety
  (:class:`ServiceCheckpoint`) types.
* **Scale** — the sharded hierarchical tier for 1000-node days:
  :func:`shard_cluster` cells, the :class:`HeadroomRouter`, the
  :class:`GlobalCoordinator`, the :class:`ShardedConsolidationService`
  (built via :func:`build_sharded_service`), and
  :class:`ScaleCheckpoint` crash safety (see the "Scale layer"
  section of ``docs/architecture.md``).
* **Daemon** — the long-running serving layer: the
  :class:`ConsolidationDaemon` over a durable :class:`JobSpool`
  (submit/status/cancel), built from a :class:`ServiceBlueprint`
  whose :func:`execute_epoch` is a pure function of
  ``(checkpoint, arrivals)`` (see the "Daemon layer" section of
  ``docs/architecture.md``).
* **Providers** — the elastic capacity layer: the
  :class:`CapacityProvider` contract over durable/spot
  :class:`ProviderInstance` pools, the fixed :class:`StaticProvider`
  (byte-identical to no provider), the :class:`ElasticProvider` with
  :class:`AutoscalerConfig`-driven resizing and two-phase spot
  preemption, :class:`CapacityEvent` records, and the
  :func:`make_provider` / :func:`register_provider` registry (see the
  "Elastic capacity & preemption" section of ``docs/robustness.md``).
* **Robustness** — deterministic fault injection
  (:class:`FaultPlan` / :class:`FaultConfig`), the :class:`RetryPolicy`
  governing the retrying measurement path, and :class:`MeasurementFault`
  for readings that exhaust it (see ``docs/robustness.md``).
* **Observability** — the :mod:`repro.obs` subsystem
  (:func:`~repro.obs.recording`, :class:`~repro.obs.TraceRecorder`,
  :func:`~repro.obs.write_trace`, :func:`~repro.obs.load_trace`).
* **Errors** — the :class:`ReproError` hierarchy.

``repro/__init__.py`` re-exports this module one-to-one, so
``from repro import build_model`` and ``from repro.api import
build_model`` name the same objects.  Symbols that used to live at the
top level but are *not* part of this surface remain importable from
``repro`` through deprecation shims (warning once per symbol) or
directly from their defining submodule.
"""

from __future__ import annotations

from repro import obs
from repro.apps import (
    ALL_WORKLOADS,
    BATCH_WORKLOADS,
    DISTRIBUTED_WORKLOADS,
    NETWORK_WORKLOADS,
    get_workload,
)
from repro.cluster import ClusterSpec, ContentionDomain
from repro.daemon import (
    ConsolidationDaemon,
    JobSpool,
    ServiceBlueprint,
    execute_epoch,
)
from repro.core import (
    HomogeneousSetting,
    InterferenceModel,
    InterferenceProfile,
    MATRIX_PROFILERS,
    ModelBuildReport,
    NaiveProportionalModel,
    OnlineModel,
    PredictionKernel,
    PredictionRequest,
    PropagationMatrix,
    build_batch_profiles,
    build_model,
    build_network_profiles,
    load_model,
    save_model,
)
from repro.errors import (
    CatalogError,
    ConfigurationError,
    DaemonError,
    FaultError,
    MeasurementFault,
    ModelError,
    PlacementError,
    ProfilingError,
    ReproError,
    ServiceError,
    SimulationError,
)
from repro.faults import FaultConfig, FaultPlan, RetryPolicy
from repro.obs import (
    NullRecorder,
    TraceRecorder,
    load_trace,
    recording,
    summarize_text,
    write_trace,
)
from repro.placement import (
    AnnealingSchedule,
    InstanceSpec,
    Placement,
    QoSAwarePlacer,
    QoSConstraint,
    SimulatedAnnealingPlacer,
    ThroughputPlacer,
)
from repro.providers import (
    AutoscalerConfig,
    CapacityEvent,
    CapacityProvider,
    ElasticProvider,
    ProviderInstance,
    StaticProvider,
    make_provider,
    provider_names,
    register_provider,
)
from repro.scale import (
    CoordinatorConfig,
    GlobalCoordinator,
    HeadroomRouter,
    ScaleCheckpoint,
    ShardedConsolidationService,
    build_sharded_service,
    scale_day_service,
    shard_cluster,
)
from repro.service import (
    ConsolidationService,
    EventLog,
    FixedStream,
    Job,
    MetricsSnapshot,
    ServiceCheckpoint,
    ServiceConfig,
    StreamConfig,
    WorkloadStream,
)
from repro.sim import ClusterRunner, MeasurementCache, MeasurementRequest

__all__ = [
    # measurement
    "ClusterRunner",
    "ClusterSpec",
    "MeasurementCache",
    "MeasurementRequest",
    # model building & prediction
    "ALL_WORKLOADS",
    "BATCH_WORKLOADS",
    "ContentionDomain",
    "DISTRIBUTED_WORKLOADS",
    "HomogeneousSetting",
    "NETWORK_WORKLOADS",
    "InterferenceModel",
    "InterferenceProfile",
    "MATRIX_PROFILERS",
    "ModelBuildReport",
    "NaiveProportionalModel",
    "OnlineModel",
    "PredictionKernel",
    "PredictionRequest",
    "PropagationMatrix",
    "build_batch_profiles",
    "build_model",
    "build_network_profiles",
    "get_workload",
    "load_model",
    "save_model",
    # placement
    "AnnealingSchedule",
    "InstanceSpec",
    "Placement",
    "QoSAwarePlacer",
    "QoSConstraint",
    "SimulatedAnnealingPlacer",
    "ThroughputPlacer",
    # service
    "ConsolidationService",
    "EventLog",
    "FixedStream",
    "Job",
    "MetricsSnapshot",
    "ServiceCheckpoint",
    "ServiceConfig",
    "StreamConfig",
    "WorkloadStream",
    # scale
    "CoordinatorConfig",
    "GlobalCoordinator",
    "HeadroomRouter",
    "ScaleCheckpoint",
    "ShardedConsolidationService",
    "build_sharded_service",
    "scale_day_service",
    "shard_cluster",
    # daemon
    "ConsolidationDaemon",
    "JobSpool",
    "ServiceBlueprint",
    "execute_epoch",
    # providers
    "AutoscalerConfig",
    "CapacityEvent",
    "CapacityProvider",
    "ElasticProvider",
    "ProviderInstance",
    "StaticProvider",
    "make_provider",
    "provider_names",
    "register_provider",
    # robustness
    "FaultConfig",
    "FaultPlan",
    "RetryPolicy",
    # observability
    "NullRecorder",
    "TraceRecorder",
    "load_trace",
    "obs",
    "recording",
    "summarize_text",
    "write_trace",
    # errors
    "CatalogError",
    "ConfigurationError",
    "DaemonError",
    "FaultError",
    "MeasurementFault",
    "ModelError",
    "PlacementError",
    "ProfilingError",
    "ReproError",
    "ServiceError",
    "SimulationError",
]
