"""Command-line interface.

Provides direct access to the reproduction's main entry points::

    python -m repro list                  # catalog + experiments
    python -m repro run fig2              # regenerate a paper artifact
    python -m repro profile M.lmps M.Gems --out model.json
    python -m repro predict --model model.json --workload M.lmps \\
        --pressure 6 --count 3

Experiments can take seconds to minutes (they include the one-time
profiling phase); their output is the plain-text rendering of the
corresponding paper table or figure.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis.reporting import format_table
from repro.apps.catalog import table1_rows
from repro.core.builder import build_model
from repro.core.profile_store import load_model, save_model
from repro.errors import ReproError
from repro.experiments.registry import REGISTRY, get_experiment
from repro.sim.runner import ClusterRunner


def _cmd_list(_args: argparse.Namespace) -> int:
    print("Workload catalog (Table 1):\n")
    print(format_table(["Type", "Name", "Size", "Abbrev."], table1_rows()))
    print("\nReproducible experiments:\n")
    rows = [
        (entry.experiment_id, entry.paper_artifact, entry.description)
        for entry in REGISTRY.values()
    ]
    print(format_table(["Id", "Artifact", "Description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    entry = get_experiment(args.experiment)
    print(f"Running {entry.paper_artifact}: {entry.description}...\n",
          file=sys.stderr)
    result = entry.run()
    print(entry.render(result))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    runner = ClusterRunner(base_seed=args.seed)
    report = build_model(
        runner,
        args.workloads,
        algorithm=args.algorithm,
        policy_samples=args.policy_samples,
        seed=args.seed,
    )
    rows = [
        (
            abbrev,
            report.model.profile(abbrev).policy_name,
            report.model.profile(abbrev).bubble_score,
            report.profiling_outcomes[abbrev].cost_percent,
        )
        for abbrev in args.workloads
    ]
    print(format_table(
        ["Workload", "Policy", "Bubble score", "Profiling cost (%)"], rows
    ))
    if args.out:
        save_model(report.model, args.out)
        print(f"\nmodel written to {args.out}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    if args.pressures:
        vector = [float(p) for p in args.pressures.split(",")]
        predicted = model.predict_heterogeneous(args.workload, vector)
        setting = f"heterogeneous vector {vector}"
    else:
        predicted = model.predict_homogeneous(
            args.workload, args.pressure, args.count
        )
        setting = f"{args.count} node(s) at pressure {args.pressure}"
    print(f"{args.workload} under {setting}: {predicted:.3f}x solo time")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Interference management for distributed parallel applications "
            "(ASPLOS'16 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list workloads and experiments")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate a paper table/figure")
    p_run.add_argument("experiment", choices=sorted(REGISTRY))
    p_run.set_defaults(fn=_cmd_run)

    p_profile = sub.add_parser("profile", help="build an interference model")
    p_profile.add_argument("workloads", nargs="+")
    p_profile.add_argument("--out", help="write the model to a JSON file")
    p_profile.add_argument(
        "--algorithm", default="binary-optimized",
        choices=["binary-optimized", "binary-brute"],
    )
    p_profile.add_argument("--policy-samples", type=int, default=30)
    p_profile.add_argument("--seed", type=int, default=2016)
    p_profile.set_defaults(fn=_cmd_profile)

    p_predict = sub.add_parser("predict", help="query a saved model")
    p_predict.add_argument("--model", required=True)
    p_predict.add_argument("--workload", required=True)
    p_predict.add_argument("--pressure", type=float, default=8.0)
    p_predict.add_argument("--count", type=float, default=1.0)
    p_predict.add_argument(
        "--pressures",
        help="comma-separated per-node pressures (heterogeneous query)",
    )
    p_predict.set_defaults(fn=_cmd_predict)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
