"""Command-line interface.

Provides direct access to the reproduction's main entry points::

    python -m repro list                  # catalog + experiments
    python -m repro run fig2              # regenerate a paper artifact
    python -m repro profile M.lmps M.Gems --out model.json
    python -m repro predict --model model.json --workload M.lmps \\
        --pressure 6 --count 3
    python -m repro serve --seed 2016 --epochs 12   # simulated traffic day

Experiments can take seconds to minutes (they include the one-time
profiling phase); their output is the plain-text rendering of the
corresponding paper table or figure.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis.reporting import (
    format_table,
    render_event_counts,
    render_service_snapshot,
)
from repro.apps.catalog import BATCH_WORKLOADS, table1_rows
from repro.core.builder import MATRIX_PROFILERS, build_batch_profiles, build_model
from repro.core.profile_store import load_model, save_model
from repro.errors import ReproError
from repro.experiments.registry import REGISTRY, get_experiment
from repro.service import ConsolidationService, ServiceConfig, StreamConfig, WorkloadStream
from repro.sim.runner import ClusterRunner

#: Default application mix a `repro serve` traffic day draws from.
DEFAULT_SERVE_MIX = ("M.lmps", "M.milc", "H.KM", "S.WC")


def _cmd_list(_args: argparse.Namespace) -> int:
    print("Workload catalog (Table 1):\n")
    print(format_table(["Type", "Name", "Size", "Abbrev."], table1_rows()))
    print("\nReproducible experiments:\n")
    rows = [
        (entry.experiment_id, entry.paper_artifact, entry.description)
        for entry in REGISTRY.values()
    ]
    print(format_table(["Id", "Artifact", "Description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    entry = get_experiment(args.experiment)
    print(f"Running {entry.paper_artifact}: {entry.description}...\n",
          file=sys.stderr)
    result = entry.run()
    print(entry.render(result))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    runner = ClusterRunner(base_seed=args.seed)
    report = build_model(
        runner,
        args.workloads,
        algorithm=args.algorithm,
        policy_samples=args.policy_samples,
        seed=args.seed,
    )
    rows = [
        (
            abbrev,
            report.model.profile(abbrev).policy_name,
            report.model.profile(abbrev).bubble_score,
            report.profiling_outcomes[abbrev].cost_percent,
        )
        for abbrev in args.workloads
    ]
    print(format_table(
        ["Workload", "Policy", "Bubble score", "Profiling cost (%)"], rows
    ))
    if args.out:
        save_model(report.model, args.out)
        print(f"\nmodel written to {args.out}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    if args.pressures:
        vector = [float(p) for p in args.pressures.split(",")]
        predicted = model.predict_heterogeneous(args.workload, vector)
        setting = f"heterogeneous vector {vector}"
    else:
        predicted = model.predict_homogeneous(
            args.workload, args.pressure, args.count
        )
        setting = f"{args.count} node(s) at pressure {args.pressure}"
    print(f"{args.workload} under {setting}: {predicted:.3f}x solo time")
    return 0


def _serve_expectation(service: ConsolidationService) -> dict:
    """The deterministic outcome summary `--expect` compares against."""
    return {
        "counters": service.log.counts(),
        "final": service.snapshots[-1].to_dict(),
    }


def _check_expectation(expected: dict, actual: dict) -> int:
    """Compare a served day against a checked-in expectation.

    QoS-violation regressions fail hard; any other counter drift is
    reported (it means the deterministic day changed and the
    expectation file needs a refresh) but does not fail the run.
    """
    expected_violations = expected["final"]["qos_violations_total"]
    actual_violations = actual["final"]["qos_violations_total"]
    for key in sorted(set(actual["counters"]) | set(expected["counters"])):
        want = expected["counters"].get(key, 0)
        got = actual["counters"].get(key, 0)
        if want != got:
            print(
                f"warning: event count {key!r} drifted: "
                f"expected {want}, got {got}",
                file=sys.stderr,
            )
    if actual_violations > expected_violations:
        print(
            f"error: QoS-violation regression: expected at most "
            f"{expected_violations}, got {actual_violations}",
            file=sys.stderr,
        )
        return 1
    print(
        f"expectation check passed: {actual_violations} QoS violation(s) "
        f"(bound {expected_violations})"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    workloads = tuple(args.workloads or DEFAULT_SERVE_MIX)
    distributed = [w for w in workloads if w not in BATCH_WORKLOADS]
    batch = [w for w in workloads if w in BATCH_WORKLOADS]
    runner = ClusterRunner(base_seed=args.seed)
    print(
        f"Profiling {len(workloads)} workload(s) for the serving model...",
        file=sys.stderr,
    )
    report = build_model(
        runner,
        distributed,
        policy_samples=args.policy_samples,
        seed=args.seed,
        span=4,
    )
    if batch:
        build_batch_profiles(runner, report.model, batch, span=4)
    stream = WorkloadStream(
        StreamConfig(
            workloads=workloads,
            arrival_rate=args.arrival_rate,
            qos_fraction=args.qos_fraction,
        ),
        seed=args.seed,
    )
    service = ConsolidationService(
        runner,
        report.model,
        stream,
        config=ServiceConfig(
            reschedule_every=args.reschedule_every,
            migration_cost=args.migration_cost,
        ),
        seed=args.seed,
    )
    print(f"Serving {args.epochs} epochs...", file=sys.stderr)
    service.run(args.epochs)

    final = service.snapshots[-1]
    print(render_service_snapshot(final))
    print()
    print(render_event_counts(service.log.counts()))
    if args.event_log:
        service.log.write(args.event_log)
        print(f"\nevent log written to {args.event_log}", file=sys.stderr)
    actual = _serve_expectation(service)
    if args.snapshot:
        with open(args.snapshot, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "final": actual["final"],
                    "counters": actual["counters"],
                    "per_epoch": [s.to_dict() for s in service.snapshots],
                },
                handle,
                sort_keys=True,
                indent=2,
            )
            handle.write("\n")
        print(f"metrics snapshot written to {args.snapshot}", file=sys.stderr)
    if args.update_expect:
        with open(args.update_expect, "w", encoding="utf-8") as handle:
            json.dump(actual, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"expectation written to {args.update_expect}", file=sys.stderr)
    if args.expect:
        with open(args.expect, "r", encoding="utf-8") as handle:
            expected = json.load(handle)
        return _check_expectation(expected, actual)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Interference management for distributed parallel applications "
            "(ASPLOS'16 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list workloads and experiments")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate a paper table/figure")
    p_run.add_argument("experiment", choices=sorted(REGISTRY))
    p_run.set_defaults(fn=_cmd_run)

    p_profile = sub.add_parser("profile", help="build an interference model")
    p_profile.add_argument("workloads", nargs="+")
    p_profile.add_argument("--out", help="write the model to a JSON file")
    p_profile.add_argument(
        "--algorithm", default="binary-optimized",
        choices=sorted(MATRIX_PROFILERS),
    )
    p_profile.add_argument("--policy-samples", type=int, default=30)
    p_profile.add_argument("--seed", type=int, default=2016)
    p_profile.set_defaults(fn=_cmd_profile)

    p_predict = sub.add_parser("predict", help="query a saved model")
    p_predict.add_argument("--model", required=True)
    p_predict.add_argument("--workload", required=True)
    p_predict.add_argument("--pressure", type=float, default=8.0)
    p_predict.add_argument("--count", type=float, default=1.0)
    p_predict.add_argument(
        "--pressures",
        help="comma-separated per-node pressures (heterogeneous query)",
    )
    p_predict.set_defaults(fn=_cmd_predict)

    p_serve = sub.add_parser(
        "serve",
        help="run the online consolidation service over a seeded traffic day",
    )
    p_serve.add_argument("--epochs", type=int, default=12)
    p_serve.add_argument("--seed", type=int, default=2016)
    p_serve.add_argument(
        "--workloads", nargs="+",
        help=f"catalog mix jobs draw from (default: {' '.join(DEFAULT_SERVE_MIX)})",
    )
    p_serve.add_argument("--arrival-rate", type=float, default=1.2,
                         help="mean job arrivals per epoch (Poisson)")
    p_serve.add_argument("--qos-fraction", type=float, default=0.5,
                         help="probability a job carries a QoS bound")
    p_serve.add_argument("--policy-samples", type=int, default=10)
    p_serve.add_argument("--reschedule-every", type=int, default=1)
    p_serve.add_argument("--migration-cost", type=float, default=0.02)
    p_serve.add_argument("--event-log", help="write the JSONL event log here")
    p_serve.add_argument("--snapshot", help="write the metrics snapshot JSON here")
    p_serve.add_argument(
        "--expect",
        help="expectation JSON to check; exits 1 on a QoS-violation regression",
    )
    p_serve.add_argument(
        "--update-expect", help="write the expectation JSON for this run"
    )
    p_serve.set_defaults(fn=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
