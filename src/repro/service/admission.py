"""QoS admission control (the service's gatekeeper).

Admission answers one question: *can this job be placed right now
without breaking anybody's QoS bound?*  The controller never migrates
existing tenants — that is the rescheduler's prerogative — so the
decision reduces to choosing nodes for the new job's units among the
free unit slots and predicting the resulting normalized times with the
interference model (:func:`~repro.placement.objectives.predict_placement`
over the :class:`~repro.core.online.OnlineModel`).

A job is admitted only if some candidate keeps **every** co-resident
tenant inside its QoS bound *and* satisfies the job's own bound; among
feasible candidates the one minimizing total weighted predicted time
wins (ties broken by node order, so decisions are deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, islice
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.errors import PlacementError, ServiceError
from repro.faults.degradation import (
    conservative_placements_batch,
    conservative_prediction,
    supports_degradation,
)
from repro.obs import recorder as _obs
from repro.placement.assignment import Placement
from repro.placement.objectives import (
    QoSConstraint,
    predict_placement_scalar,
    weighted_total_time,
)
from repro.service.jobs import Job

#: Admission decision reasons.
ADMITTED = "admitted"
NO_CAPACITY = "no-capacity"
NO_DURABLE_CAPACITY = "no-durable-capacity"
QOS_INFEASIBLE = "qos-infeasible"


def placement_with_job(
    placement: Optional[Placement],
    cluster_spec: ClusterSpec,
    job: Job,
    nodes: Sequence[int],
    *,
    unit_slots_per_node: int = 2,
) -> Placement:
    """The current placement extended with ``job`` on ``nodes``.

    Raises
    ------
    PlacementError
        If the extension violates capacity or co-location constraints.
    """
    instances = list(placement.instances) if placement is not None else []
    assignment: Dict[str, Tuple[int, ...]] = {
        spec.instance_key: placement.nodes_of(spec.instance_key)
        for spec in instances
    } if placement is not None else {}
    if job.job_id in assignment:
        raise ServiceError(f"job {job.job_id!r} is already placed")
    instances.append(job.instance_spec())
    assignment[job.job_id] = tuple(int(n) for n in nodes)
    return Placement(
        cluster_spec,
        instances,
        assignment,
        unit_slots_per_node=(
            placement.unit_slots_per_node
            if placement is not None
            else unit_slots_per_node
        ),
    )


def placement_without_job(placement: Placement, job_id: str) -> Optional[Placement]:
    """The placement with ``job_id`` evicted (``None`` if it empties)."""
    remaining = [
        spec for spec in placement.instances if spec.instance_key != job_id
    ]
    if len(remaining) == len(placement.instances):
        raise ServiceError(f"job {job_id!r} is not placed")
    if not remaining:
        return None
    assignment = {
        spec.instance_key: placement.nodes_of(spec.instance_key)
        for spec in remaining
    }
    return Placement(
        placement.cluster_spec,
        remaining,
        assignment,
        unit_slots_per_node=placement.unit_slots_per_node,
    )


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt.

    ``placement``/``predictions`` are populated only when admitted;
    ``candidates_evaluated`` counts the placements the controller
    predicted before deciding (its work measure).
    """

    job: Job
    admitted: bool
    reason: str
    placement: Optional[Placement] = None
    predictions: Optional[Dict[str, float]] = None
    candidates_evaluated: int = 0


class AdmissionController:
    """Predictive admission control over free unit slots.

    Parameters
    ----------
    model:
        Prediction model exposing ``predict_under_corunners`` (the
        static :class:`~repro.core.model.InterferenceModel` or the
        learning :class:`~repro.core.online.OnlineModel`).
    cluster_spec:
        Cluster shape.
    unit_slots_per_node:
        Units per host (2 on the paper's testbed); used when admitting
        into an empty cluster.
    max_candidates:
        Cap on node combinations evaluated per decision, so admission
        latency stays bounded on large clusters.  Combinations are
        enumerated in sorted node order, so the cap cuts the tail
        deterministically.
    degraded_workloads:
        Live set of workloads whose profiles rest on measurement
        fallbacks (shared with
        :attr:`~repro.sim.runner.ClusterRunner.faulted_workloads`).
        Predictions for these fall back to the conservative ALL-max
        mapping (:func:`repro.faults.degradation.conservative_prediction`),
        so a workload the profiler could not measure reliably is never
        the reason a QoS bound is optimistically waved through.
    capacity:
        Optional :class:`~repro.providers.base.CapacityProvider`.  When
        set, admission is *capacity-aware*: only the provider's
        schedulable (live, non-draining) nodes count as free, and
        mission-critical jobs are additionally restricted to durable
        nodes — a tenant with a QoS bound can never land on spot
        capacity that might be preempted out from under it.  ``None``
        (the default, and any non-elastic provider's effective
        behaviour) reproduces the fixed-pool decisions bit for bit.
    """

    def __init__(
        self,
        model,
        cluster_spec: ClusterSpec,
        *,
        unit_slots_per_node: int = 2,
        max_candidates: int = 4096,
        degraded_workloads: Optional[Set[str]] = None,
        capacity=None,
    ) -> None:
        if max_candidates <= 0:
            raise ServiceError("max_candidates must be positive")
        self.model = model
        self.cluster_spec = cluster_spec
        self.unit_slots_per_node = unit_slots_per_node
        self.max_candidates = max_candidates
        self.degraded_workloads = (
            degraded_workloads if degraded_workloads is not None else set()
        )
        self.capacity = capacity

    def _predict(self, candidate: Placement) -> Dict[str, float]:
        """Per-instance predictions, conservatively for degraded workloads.

        The scalar reference path: :meth:`try_admit` scores whole
        candidate waves through the vectorized batch instead whenever
        the model supports it, with bit-identical results.
        """
        predictions = predict_placement_scalar(self.model, candidate)
        if not self.degraded_workloads or not supports_degradation(self.model):
            return predictions
        for spec in candidate.instances:
            if spec.workload not in self.degraded_workloads:
                continue
            key = spec.instance_key
            conservative = conservative_prediction(
                self.model,
                spec.workload,
                candidate.spanned_nodes(key),
                candidate.co_runner_workloads(key),
            )
            # Degradation only ever raises a prediction: the model's
            # own estimate still applies when it is already worse.
            if conservative > predictions[key]:
                predictions[key] = conservative
                _obs.RECORDER.count("fault.degraded_prediction")
        return predictions

    # ------------------------------------------------------------------
    def free_nodes(self, placement: Optional[Placement]) -> List[int]:
        """Node ids with at least one free unit slot, in sorted order.

        Public because the scale layer's
        :class:`~repro.scale.router.HeadroomRouter` probes candidate
        placements over the same free-slot inventory admission uses.
        """
        load: Dict[int, int] = {}
        if placement is not None:
            for spec in placement.instances:
                for node in placement.nodes_of(spec.instance_key):
                    load[node] = load.get(node, 0) + 1
        slots = (
            placement.unit_slots_per_node
            if placement is not None
            else self.unit_slots_per_node
        )
        if self.capacity is not None:
            pool = self.capacity.schedulable_nodes()
        else:
            pool = range(self.cluster_spec.num_nodes)
        return [node for node in pool if load.get(node, 0) < slots]

    @staticmethod
    def _constraints(
        tenants: Sequence[Job], job: Job
    ) -> List[QoSConstraint]:
        constraints = [
            tenant.qos_constraint()
            for tenant in tenants
            if tenant.mission_critical
        ]
        if job.mission_critical:
            constraints.append(job.qos_constraint())
        return [c for c in constraints if c is not None]

    # ------------------------------------------------------------------
    def try_admit(
        self,
        placement: Optional[Placement],
        tenants: Sequence[Job],
        job: Job,
    ) -> AdmissionDecision:
        """Decide whether ``job`` can join the current placement.

        Parameters
        ----------
        placement:
            Where the tenants currently sit (``None`` for an empty
            cluster).
        tenants:
            The resident jobs, in placement order.
        job:
            The candidate.
        """
        free = self.free_nodes(placement)
        if len(free) < job.num_units:
            return AdmissionDecision(job, False, NO_CAPACITY)
        if self.capacity is not None and job.mission_critical:
            durable = set(self.capacity.durable_nodes())
            free = [node for node in free if node in durable]
            if len(free) < job.num_units:
                return AdmissionDecision(job, False, NO_DURABLE_CAPACITY)
        constraints = self._constraints(tenants, job)
        candidates: List[Placement] = []
        for nodes in islice(
            combinations(free, job.num_units), self.max_candidates
        ):
            try:
                candidates.append(
                    placement_with_job(
                        placement,
                        self.cluster_spec,
                        job,
                        nodes,
                        unit_slots_per_node=self.unit_slots_per_node,
                    )
                )
            except PlacementError:
                continue
        evaluated = len(candidates)
        if not candidates:
            return AdmissionDecision(
                job, False, NO_CAPACITY, candidates_evaluated=0
            )
        if hasattr(self.model, "predict_placements_batch"):
            best = self._select_batch(candidates, constraints)
        else:
            best = self._select_scalar(candidates, constraints)
        if best is None:
            return AdmissionDecision(
                job, False, QOS_INFEASIBLE, candidates_evaluated=evaluated
            )
        chosen, predictions = best
        return AdmissionDecision(
            job,
            True,
            ADMITTED,
            placement=chosen,
            predictions=predictions,
            candidates_evaluated=evaluated,
        )

    def decision_still_valid(self, decision: AdmissionDecision) -> bool:
        """Whether an admitted decision's nodes are still schedulable.

        An elastic pool can lose a node between the admission
        prediction and the commit (a preemption reclaim racing the
        admit phase).  The service checks here before binding the job;
        a stale decision is requeued rather than raising deep inside
        the epoch body.  Always ``True`` without a capacity hook — the
        fixed pool cannot vanish.
        """
        if self.capacity is None or not decision.admitted:
            return True
        nodes = set(
            decision.placement.nodes_of(decision.job.job_id)
        )
        if not nodes <= set(self.capacity.schedulable_nodes()):
            return False
        if decision.job.mission_critical:
            return nodes <= set(self.capacity.durable_nodes())
        return True

    def _select_scalar(
        self,
        candidates: Sequence[Placement],
        constraints: Sequence[QoSConstraint],
    ) -> Optional[Tuple[Placement, Dict[str, float]]]:
        """Reference selection: predict candidates one at a time."""
        best: Optional[Tuple[float, Placement, Dict[str, float]]] = None
        for candidate in candidates:
            predictions = self._predict(candidate)
            if any(not c.satisfied_by(predictions) for c in constraints):
                continue
            total = weighted_total_time(predictions, candidate)
            if best is None or total < best[0]:
                best = (total, candidate, predictions)
        if best is None:
            return None
        return best[1], best[2]

    def _select_batch(
        self,
        candidates: Sequence[Placement],
        constraints: Sequence[QoSConstraint],
    ) -> Optional[Tuple[Placement, Dict[str, float]]]:
        """Score the whole candidate wave as one vectorized batch.

        Bit-identical to :meth:`_select_scalar`: predictions replay the
        scalar float operations (see :mod:`repro.core.kernel`), the
        degraded-workload conservative ALL-max override applies
        per-cell with the same replacement rule, and the winner is the
        *first* feasible candidate attaining the minimum total — the
        same deterministic sorted-enumeration tie-break as the scalar
        ``total < best`` scan.
        """
        instances = candidates[0].instances
        predictions = self.model.predict_placements_batch(candidates)
        if self.degraded_workloads and supports_degradation(self.model):
            for column, spec in enumerate(instances):
                if spec.workload not in self.degraded_workloads:
                    continue
                conservative = conservative_placements_batch(
                    self.model, candidates, spec.workload, spec.instance_key
                )
                # Degradation only ever raises a prediction: the
                # model's own estimate still applies when it is
                # already worse.
                raised = conservative > predictions[:, column]
                if raised.any():
                    predictions[raised, column] = conservative[raised]
                    _obs.RECORDER.count(
                        "fault.degraded_prediction", int(raised.sum())
                    )
        keys = [spec.instance_key for spec in instances]
        feasible = np.ones(len(candidates), dtype=bool)
        for constraint in constraints:
            column = keys.index(constraint.instance_key)
            feasible &= (
                predictions[:, column] <= constraint.max_normalized_time
            )
        chosen = np.flatnonzero(feasible)
        if chosen.size == 0:
            return None
        # Same summation order as ``weighted_total_time``: one
        # instance-weight term at a time, accumulated left to right.
        totals = np.zeros(len(candidates), dtype=float)
        for column, spec in enumerate(instances):
            totals = totals + spec.weight * predictions[:, column]
        winner = int(chosen[np.argmin(totals[chosen])])
        return candidates[winner], {
            key: float(value)
            for key, value in zip(keys, predictions[winner])
        }
