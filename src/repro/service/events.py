"""Append-only structured event log (the service's flight recorder).

Every externally visible decision the service makes — arrivals,
admissions, rejections, migrations, departures, QoS violations — is
appended here as a :class:`ServiceEvent`.  The log is the determinism
contract's witness: two runs of the same seeded traffic day must
produce **byte-identical** JSONL renderings, which is what the
``service_smoke`` CI job and the determinism tests compare.

Floats are rounded to six decimals before serialization so the bytes
do not depend on accumulated float formatting noise, and payload keys
are sorted so dict insertion order cannot leak into the output.

Crash safety: a log may be :meth:`attached <EventLog.attach>` to a
file, in which case every appended event is written, flushed and
fsync'd immediately — the on-disk log never lags the in-memory one by
more than the event being written.  :meth:`EventLog.recover` reads such
a file back after a crash, truncating a torn final line (a crash
mid-``write`` leaves at most one partial line, by construction).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro._util import atomic_write_text
from repro.errors import ServiceError

#: Event kinds, in the order they can occur within an epoch.
#: The capacity block (``autoscale`` through ``job_requeue``) leads:
#: an elastic provider's pool changes are applied at the epoch
#: boundary before anything else, so the epoch's admission and
#: rescheduling see a consistent capacity picture (a run without a
#: provider — or with the static one — never emits any of them, so
#: flat-replay logs are unchanged).  ``job_requeue`` can also appear in
#: the admit phase, when a node vanishes between an admission decision
#: and its commit.  ``job_cancel`` then leads the tenant lifecycle
#: because cancellations requested since the last boundary are
#: honoured before anything else happens to tenants.  The final entry
#: is appended by the scale layer's global coordinator *after* the
#: per-cell epoch bodies (so it follows the cells' ``epoch_end``
#: events in a merged log); the flat service never emits it.
EVENT_KINDS = (
    "autoscale",
    "node_join",
    "node_leave",
    "preempt_warning",
    "preempt_reclaim",
    "job_requeue",
    "job_cancel",
    "depart",
    "arrival",
    "admit",
    "queue",
    "reject",
    "migrate",
    "measure_fault",
    "qos_violation",
    "epoch_end",
    "cell_migrate",
)


def _clean(value: object) -> object:
    """Round floats (recursively) so serialization is byte-stable."""
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    return value


@dataclass(frozen=True)
class ServiceEvent:
    """One log entry: (epoch, sequence number, kind, payload)."""

    epoch: int
    seq: int
    kind: str
    payload: Tuple[Tuple[str, object], ...]

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view (payload keys flattened in)."""
        entry: Dict[str, object] = {
            "epoch": self.epoch,
            "seq": self.seq,
            "kind": self.kind,
        }
        entry.update(dict(self.payload))
        return entry

    @classmethod
    def from_dict(cls, entry: Dict[str, object]) -> "ServiceEvent":
        """Rebuild an event from its :meth:`to_dict` form.

        Round-trips exactly: ``from_dict(e.to_dict()).to_json()`` is
        byte-identical to ``e.to_json()``.
        """
        try:
            epoch = int(entry["epoch"])
            seq = int(entry["seq"])
            kind = str(entry["kind"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed event entry: {entry!r}") from exc
        if kind not in EVENT_KINDS:
            raise ServiceError(f"unknown event kind {kind!r} in {entry!r}")
        payload = tuple(sorted(
            (key, _clean(value))
            for key, value in entry.items()
            if key not in ("epoch", "seq", "kind")
        ))
        return cls(epoch=epoch, seq=seq, kind=kind, payload=payload)

    def to_json(self) -> str:
        """Canonical single-line JSON rendering."""
        return json.dumps(self.to_dict(), sort_keys=True)


class EventLog:
    """Append-only, in-order event store.

    Optionally *attached* to a path: an attached log persists every
    event at append time (write + flush + fsync), which is what makes
    ``repro serve --resume`` possible — after a hard kill, the on-disk
    log holds every completed append plus at most one torn line.

    ``start_seq`` offsets the sequence numbering: a log created with
    ``start_seq=n`` holds no events but numbers its first append ``n``.
    That is how a pure epoch execution (restored from a checkpoint
    whose day already logged ``n`` events) stamps globally consistent
    sequence numbers without holding the day's history — the fresh
    events splice verbatim onto the durable log the daemon keeps.
    """

    def __init__(self, start_seq: int = 0) -> None:
        if start_seq < 0:
            raise ServiceError("start_seq must be non-negative")
        self._events: List[ServiceEvent] = []
        self._start_seq = start_seq
        self._handle = None
        self._path: Optional[str] = None
        self._source_path: Optional[str] = None

    @property
    def start_seq(self) -> int:
        """Sequence number the first held event carries (0 = full log)."""
        return self._start_seq

    @property
    def source_path(self) -> Optional[str]:
        """The file this log was recovered from (``None`` otherwise)."""
        return self._source_path

    # ------------------------------------------------------------------
    # Incremental persistence
    # ------------------------------------------------------------------
    @property
    def attached_path(self) -> Optional[str]:
        """Where this log persists incrementally (``None`` if detached)."""
        return self._path

    def attach(self, path: str) -> None:
        """Persist this log (current contents and all future appends) to ``path``.

        The file is rewritten atomically with the events held so far,
        then kept open in append mode; each subsequent :meth:`append`
        is durably on disk before it returns.
        """
        self.detach()
        atomic_write_text(path, self.to_jsonl())
        self._handle = open(path, "a", encoding="utf-8")
        self._path = path

    def detach(self) -> None:
        """Stop persisting; the file keeps everything appended so far."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._path = None

    def _persist(self, event: ServiceEvent) -> None:
        if self._handle is None:
            return
        self._handle.write(event.to_json() + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    @classmethod
    def recover(cls, path: str) -> "EventLog":
        """Rebuild a log from an incrementally persisted file.

        A crash mid-append leaves at most one partial final line; that
        torn tail is dropped.  Anything else malformed — a bad line in
        the middle, out-of-order sequence numbers — is corruption this
        writer cannot have produced, and raises :class:`ServiceError`.
        The recovered log is detached; call :meth:`attach` to continue
        appending (which also rewrites the file without the torn tail).
        """
        log = cls()
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        lines = raw.split("\n")
        # Each append writes "<json>\n" in one buffer, so a torn write
        # is a proper prefix that never includes the final newline: the
        # torn tail is exactly the (non-empty) last piece of the split,
        # and every newline-terminated line must parse.
        complete = lines[:-1]
        for number, line in enumerate(complete):
            try:
                event = ServiceEvent.from_dict(json.loads(line))
            except (json.JSONDecodeError, ServiceError) as exc:
                raise ServiceError(
                    f"{path}:{number + 1}: corrupt event log line"
                ) from exc
            if event.seq != len(log._events):
                raise ServiceError(
                    f"{path}:{number + 1}: sequence {event.seq} != "
                    f"expected {len(log._events)}"
                )
            log._events.append(event)
        log._source_path = path
        return log

    def validate_tail(
        self,
        expected_length: int,
        boundary_epoch: int,
        *,
        path: Optional[str] = None,
    ) -> None:
        """Check this recovered log matches a checkpoint's tail.

        A resume adopts the recovered log truncated to the
        checkpoint's ``expected_length``; this validates — *before*
        anything is truncated — that the two artifacts are from the
        same run: the log is long enough, the event at the boundary is
        the ``epoch_end`` (or trailing ``cell_migrate``) of epoch
        ``boundary_epoch - 1``, and nothing beyond the boundary belongs
        to an already-completed epoch.  A mismatched pair (a checkpoint
        from one day next to another day's log) would otherwise replay
        into a silently diverged history; instead the error names the
        epoch, the path, and the reason.
        """
        where = path or self._source_path or self._path or "<in-memory log>"

        def fail(reason: str) -> None:
            raise ServiceError(
                f"{where}: event log does not match the resume checkpoint "
                f"at epoch boundary {boundary_epoch}: {reason}"
            )

        if len(self) < expected_length:
            fail(
                f"recovered log has {len(self)} event(s) but the "
                f"checkpoint expects at least {expected_length}"
            )
        if expected_length == 0 or expected_length <= self._start_seq:
            return
        boundary = self._events[expected_length - 1 - self._start_seq]
        if boundary.kind not in ("epoch_end", "cell_migrate"):
            fail(
                f"event {expected_length - 1} should close epoch "
                f"{boundary_epoch - 1} but is kind {boundary.kind!r}"
            )
        if boundary.epoch != boundary_epoch - 1:
            fail(
                f"event {expected_length - 1} closes epoch "
                f"{boundary.epoch}, not the checkpoint's epoch "
                f"{boundary_epoch - 1} — checkpoint and log are from "
                f"different runs or one is stale"
            )
        for event in self._events[expected_length - self._start_seq:]:
            if event.epoch < boundary_epoch:
                fail(
                    f"event {event.seq} beyond the boundary belongs to "
                    f"already-completed epoch {event.epoch}"
                )
                break

    # ------------------------------------------------------------------
    # Append-only store
    # ------------------------------------------------------------------
    def append(self, kind: str, epoch: int, **payload: object) -> ServiceEvent:
        """Record one event; returns the stamped entry."""
        if kind not in EVENT_KINDS:
            raise ServiceError(
                f"unknown event kind {kind!r}; known: {', '.join(EVENT_KINDS)}"
            )
        event = ServiceEvent(
            epoch=epoch,
            seq=len(self),
            kind=kind,
            payload=tuple(sorted(
                (key, _clean(value)) for key, value in payload.items()
            )),
        )
        self._events.append(event)
        self._persist(event)
        return event

    def truncate(self, length: int) -> None:
        """Drop events beyond global sequence ``length`` (resume-to-checkpoint).

        On an attached log the file is rewritten atomically, so the
        truncation is itself crash-safe.
        """
        if not self._start_seq <= length <= len(self):
            raise ServiceError(
                f"cannot truncate log of {len(self)} events to {length}"
            )
        if length == len(self):
            return
        del self._events[length - self._start_seq:]
        if self._path is not None:
            path = self._path
            self.attach(path)

    def __len__(self) -> int:
        return self._start_seq + len(self._events)

    def since(self, seq: int) -> List[ServiceEvent]:
        """Held events with sequence number ``>= seq``, in log order."""
        return list(self._events[max(seq - self._start_seq, 0):])

    def __iter__(self) -> Iterator[ServiceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[ServiceEvent]:
        """All events of one kind, in log order."""
        if kind not in EVENT_KINDS:
            raise ServiceError(f"unknown event kind {kind!r}")
        return [event for event in self._events if event.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Events per kind (only kinds that occurred)."""
        result: Dict[str, int] = {}
        for event in self._events:
            result[event.kind] = result.get(event.kind, 0) + 1
        return result

    def to_jsonl(self) -> str:
        """The whole log as canonical JSON lines."""
        return "\n".join(event.to_json() for event in self._events) + (
            "\n" if self._events else ""
        )

    def write(self, path: str) -> None:
        """Write the JSONL rendering to ``path`` atomically."""
        if path == self._path:
            # The attached file is already up to date (and open).
            return
        atomic_write_text(path, self.to_jsonl())
