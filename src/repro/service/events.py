"""Append-only structured event log (the service's flight recorder).

Every externally visible decision the service makes — arrivals,
admissions, rejections, migrations, departures, QoS violations — is
appended here as a :class:`ServiceEvent`.  The log is the determinism
contract's witness: two runs of the same seeded traffic day must
produce **byte-identical** JSONL renderings, which is what the
``service_smoke`` CI job and the determinism tests compare.

Floats are rounded to six decimals before serialization so the bytes
do not depend on accumulated float formatting noise, and payload keys
are sorted so dict insertion order cannot leak into the output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import ServiceError

#: Event kinds, in the order they can occur within an epoch.
EVENT_KINDS = (
    "depart",
    "arrival",
    "admit",
    "queue",
    "reject",
    "migrate",
    "qos_violation",
    "epoch_end",
)


def _clean(value: object) -> object:
    """Round floats (recursively) so serialization is byte-stable."""
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    return value


@dataclass(frozen=True)
class ServiceEvent:
    """One log entry: (epoch, sequence number, kind, payload)."""

    epoch: int
    seq: int
    kind: str
    payload: Tuple[Tuple[str, object], ...]

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view (payload keys flattened in)."""
        entry: Dict[str, object] = {
            "epoch": self.epoch,
            "seq": self.seq,
            "kind": self.kind,
        }
        entry.update(dict(self.payload))
        return entry

    def to_json(self) -> str:
        """Canonical single-line JSON rendering."""
        return json.dumps(self.to_dict(), sort_keys=True)


class EventLog:
    """Append-only, in-order event store."""

    def __init__(self) -> None:
        self._events: List[ServiceEvent] = []

    def append(self, kind: str, epoch: int, **payload: object) -> ServiceEvent:
        """Record one event; returns the stamped entry."""
        if kind not in EVENT_KINDS:
            raise ServiceError(
                f"unknown event kind {kind!r}; known: {', '.join(EVENT_KINDS)}"
            )
        event = ServiceEvent(
            epoch=epoch,
            seq=len(self._events),
            kind=kind,
            payload=tuple(sorted(
                (key, _clean(value)) for key, value in payload.items()
            )),
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ServiceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[ServiceEvent]:
        """All events of one kind, in log order."""
        if kind not in EVENT_KINDS:
            raise ServiceError(f"unknown event kind {kind!r}")
        return [event for event in self._events if event.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Events per kind (only kinds that occurred)."""
        result: Dict[str, int] = {}
        for event in self._events:
            result[event.kind] = result.get(event.kind, 0) + 1
        return result

    def to_jsonl(self) -> str:
        """The whole log as canonical JSON lines."""
        return "\n".join(event.to_json() for event in self._events) + (
            "\n" if self._events else ""
        )

    def write(self, path: str) -> None:
        """Write the JSONL rendering to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
