"""Crash-safe service checkpoints.

A :class:`ServiceCheckpoint` captures everything about a running
:class:`~repro.service.loop.ConsolidationService` that cannot be
re-derived from its construction seed: the resident tenants and their
remaining tenancies, the admission queue, the current placement, the
operational counters, the emitted snapshots, the online model's learned
corrections, the runner's degraded-workload set, and the event-log
length at capture time.

Everything else — the workload stream, the per-epoch search seeds, the
measurement repetitions — derives from ``stable_seed`` labels, so a
service restored from a checkpoint and run forward produces the **same
bytes** (event log and snapshots) as one that was never interrupted.
That identity is the recovery contract ``repro serve --resume`` and
``tests/service/test_recovery.py`` enforce.

Checkpoints are written atomically (temp file + fsync + rename), so a
crash during checkpointing leaves the previous checkpoint intact.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro._util import atomic_write_text
from repro.errors import ServiceError
from repro.placement.assignment import Placement
from repro.service.jobs import Job
from repro.service.telemetry import MetricsSnapshot

#: Checkpoint format version; bumped on incompatible layout changes.
CHECKPOINT_VERSION = 1

#: Operational counters captured verbatim from the service.
#: ``cancelled``, ``preempted`` and ``requeued`` are additive (older
#: checkpoints without them load as 0).
_COUNTER_FIELDS = (
    "epochs_run",
    "admitted",
    "rejected",
    "completed",
    "cancelled",
    "migration_epochs",
    "migrated_units",
    "qos_checks",
    "qos_violations",
    "preempted",
    "requeued",
)


def _job_from_dict(entry: Dict[str, object]) -> Job:
    try:
        return Job(
            job_id=str(entry["job_id"]),
            workload=str(entry["workload"]),
            num_units=int(entry["num_units"]),
            duration_epochs=int(entry["duration_epochs"]),
            arrival_epoch=int(entry["arrival_epoch"]),
            qos_target=(
                None if entry["qos_target"] is None
                else float(entry["qos_target"])
            ),
            weight=float(entry["weight"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed job entry: {entry!r}") from exc


@dataclass(frozen=True)
class ServiceCheckpoint:
    """One epoch boundary's worth of non-derivable service state."""

    counters: Dict[str, int]
    tenants: List[Tuple[Job, int]]
    queue: List[Tuple[Job, int]]
    assignment: Optional[Dict[str, Tuple[int, ...]]]
    unit_slots_per_node: int
    snapshots: List[MetricsSnapshot]
    model_state: Dict[str, Dict[str, object]]
    faulted_workloads: Tuple[str, ...]
    log_length: int
    pending_cancels: Tuple[str, ...] = ()
    seed: int = 0
    version: int = CHECKPOINT_VERSION
    #: Serialized provider inventory (``None`` for fixed-pool
    #: services).  Additive: the key is omitted from :meth:`to_dict`
    #: when ``None``, so provider-less checkpoints keep their bytes.
    provider_state: Optional[Dict[str, object]] = None

    @property
    def epoch(self) -> int:
        """Epochs the captured service had completed."""
        return self.counters["epochs_run"]

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, service) -> "ServiceCheckpoint":
        """Snapshot ``service``'s state at an epoch boundary."""
        placement = service.placement
        assignment = None
        if placement is not None:
            assignment = {
                spec.instance_key: placement.nodes_of(spec.instance_key)
                for spec in placement.instances
            }
        return cls(
            counters={
                name: getattr(service, f"_{name}") for name in _COUNTER_FIELDS
            },
            tenants=[
                (job, service._ends_at[job_id])
                for job_id, job in service._tenants.items()
            ],
            queue=[(entry.job, entry.failures) for entry in service._queue],
            assignment=assignment,
            unit_slots_per_node=(
                placement.unit_slots_per_node
                if placement is not None
                else service.admission.unit_slots_per_node
            ),
            snapshots=list(service.snapshots),
            model_state=service.model.state_dict(),
            faulted_workloads=tuple(sorted(service.runner.faulted_workloads)),
            log_length=len(service.log),
            pending_cancels=tuple(service._pending_cancels),
            seed=service.seed,
            provider_state=(
                service.provider.state_dict()
                if service.provider is not None and service.provider.elastic
                else None
            ),
        )

    def restore(self, service) -> None:
        """Install this state into a freshly constructed ``service``.

        The service must have been built from the same seed, stream,
        config, and profiled model as the captured one; only then does
        the resumed run replay the uninterrupted one byte for byte.
        """
        if self.seed != service.seed:
            raise ServiceError(
                f"checkpoint was captured at seed {self.seed}, "
                f"service runs seed {service.seed}"
            )
        for name in _COUNTER_FIELDS:
            setattr(service, f"_{name}", int(self.counters[name]))
        service._tenants = {job.job_id: job for job, _ in self.tenants}
        service._ends_at = {job.job_id: ends for job, ends in self.tenants}
        from repro.service.loop import _QueuedJob

        service._queue = [
            _QueuedJob(job, failures) for job, failures in self.queue
        ]
        if self.assignment is None:
            service._placement = None
        else:
            instances = [job.instance_spec() for job, _ in self.tenants]
            service._placement = Placement(
                service.runner.spec,
                instances,
                {key: tuple(nodes) for key, nodes in self.assignment.items()},
                unit_slots_per_node=self.unit_slots_per_node,
            )
        service.snapshots = list(self.snapshots)
        service._pending_cancels = list(self.pending_cancels)
        service.model.load_state(self.model_state)
        service.runner.faulted_workloads.update(self.faulted_workloads)
        if self.provider_state is not None:
            if service.provider is None:
                raise ServiceError(
                    "checkpoint carries provider state but the service "
                    "has no provider; rebuild it with the original "
                    "--provider configuration"
                )
            service.provider.load_state(self.provider_state)
        elif service.provider is not None and service.provider.elastic:
            raise ServiceError(
                "service has an elastic provider but the checkpoint "
                "carries no provider state; it was captured on a fixed "
                "pool"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able rendering.

        The ``provider_state`` key appears only when a provider was
        attached, so fixed-pool checkpoint bytes are unchanged.
        """
        entry: Dict[str, object] = {
            "version": self.version,
            "seed": self.seed,
            "counters": dict(self.counters),
            "tenants": [
                {"job": asdict(job), "ends_at": ends}
                for job, ends in self.tenants
            ],
            "queue": [
                {"job": asdict(job), "failures": failures}
                for job, failures in self.queue
            ],
            "assignment": (
                None if self.assignment is None
                else {
                    key: list(nodes)
                    for key, nodes in self.assignment.items()
                }
            ),
            "unit_slots_per_node": self.unit_slots_per_node,
            "snapshots": [snap.to_dict() for snap in self.snapshots],
            "model_state": self.model_state,
            "faulted_workloads": list(self.faulted_workloads),
            "log_length": self.log_length,
            "pending_cancels": list(self.pending_cancels),
        }
        if self.provider_state is not None:
            entry["provider_state"] = dict(self.provider_state)
        return entry

    @classmethod
    def from_dict(cls, entry: Dict[str, object]) -> "ServiceCheckpoint":
        """Rebuild a checkpoint from its :meth:`to_dict` form."""
        try:
            version = int(entry["version"])
            if version != CHECKPOINT_VERSION:
                raise ServiceError(
                    f"checkpoint version {version} unsupported "
                    f"(expected {CHECKPOINT_VERSION})"
                )
            assignment = entry["assignment"]
            return cls(
                version=version,
                seed=int(entry["seed"]),
                counters={
                    name: int(entry["counters"].get(name, 0))
                    for name in _COUNTER_FIELDS
                },
                tenants=[
                    (_job_from_dict(item["job"]), int(item["ends_at"]))
                    for item in entry["tenants"]
                ],
                queue=[
                    (_job_from_dict(item["job"]), int(item["failures"]))
                    for item in entry["queue"]
                ],
                assignment=(
                    None if assignment is None
                    else {
                        str(key): tuple(int(n) for n in nodes)
                        for key, nodes in assignment.items()
                    }
                ),
                unit_slots_per_node=int(entry["unit_slots_per_node"]),
                snapshots=[
                    MetricsSnapshot.from_dict(item)
                    for item in entry["snapshots"]
                ],
                model_state={
                    str(workload): dict(state)
                    for workload, state in entry["model_state"].items()
                },
                faulted_workloads=tuple(
                    str(w) for w in entry["faulted_workloads"]
                ),
                log_length=int(entry["log_length"]),
                pending_cancels=tuple(
                    str(j) for j in entry.get("pending_cancels", ())
                ),
                provider_state=(
                    None if entry.get("provider_state") is None
                    else dict(entry["provider_state"])
                ),
            )
        except ServiceError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError("malformed service checkpoint") from exc

    def save(self, path: str) -> None:
        """Write the checkpoint atomically (crash keeps the old one)."""
        atomic_write_text(
            path, json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"
        )

    @classmethod
    def load(cls, path: str) -> "ServiceCheckpoint":
        """Read a checkpoint written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                entry = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ServiceError(f"{path}: corrupt checkpoint") from exc
        return cls.from_dict(entry)
