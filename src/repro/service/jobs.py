"""Jobs: the unit of tenancy in the consolidation service.

The offline reproduction places a *fixed* application mix (Section 5's
four-instance mixes).  The service layer replaces that with a stream of
:class:`Job` tenancies: an application instance that arrives at some
epoch, runs for a bounded number of epochs, and optionally carries a
per-job QoS target (the paper's "mission-critical" bound of Section
5.2, but chosen per tenant rather than per mix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ServiceError
from repro.placement.assignment import InstanceSpec
from repro.placement.objectives import QoSConstraint


@dataclass(frozen=True)
class Job:
    """One tenancy request flowing through the service.

    Parameters
    ----------
    job_id:
        Unique key; doubles as the placement instance key.
    workload:
        Catalog abbreviation (must exist in the serving model).
    num_units:
        VM units the job deploys (4 in the paper's placements).
    duration_epochs:
        Epochs the job stays resident once admitted.
    arrival_epoch:
        Epoch the job entered the system.
    qos_target:
        Optional largest admissible normalized time (e.g. the paper's
        ``1 / 0.8 = 1.25``); ``None`` marks a best-effort tenant.
    weight:
        Contribution to weighted placement objectives.
    """

    job_id: str
    workload: str
    num_units: int = 4
    duration_epochs: int = 1
    arrival_epoch: int = 0
    qos_target: Optional[float] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.num_units <= 0:
            raise ServiceError("num_units must be positive")
        if self.duration_epochs <= 0:
            raise ServiceError("duration_epochs must be positive")
        if self.arrival_epoch < 0:
            raise ServiceError("arrival_epoch must be non-negative")
        if self.qos_target is not None and self.qos_target < 1.0:
            raise ServiceError(
                "qos_target below 1.0 is unsatisfiable even solo"
            )

    @property
    def mission_critical(self) -> bool:
        """Whether this job carries a QoS bound."""
        return self.qos_target is not None

    def instance_spec(self) -> InstanceSpec:
        """The placement-layer view of this job."""
        return InstanceSpec(
            instance_key=self.job_id,
            workload=self.workload,
            num_units=self.num_units,
            weight=self.weight,
        )

    def qos_constraint(self) -> Optional[QoSConstraint]:
        """The job's QoS constraint, or ``None`` for best-effort jobs."""
        if self.qos_target is None:
            return None
        return QoSConstraint(
            instance_key=self.job_id, max_normalized_time=self.qos_target
        )
