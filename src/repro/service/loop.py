"""The epoch-driven consolidation service.

:class:`ConsolidationService` turns the offline reproduction into a
long-running controller.  Each epoch it:

1. **departs** tenants whose tenancy expired,
2. **admits** arrivals (and queued retries) through the
   :class:`~repro.service.admission.AdmissionController` — a job enters
   only if a placement of its units onto free slots keeps every
   mission-critical tenant (and itself) inside its QoS bound,
3. **reschedules** the resident mix: a fresh placement search over the
   refined :class:`~repro.core.online.OnlineModel`, migration-gated the
   same way as :class:`~repro.placement.dynamic.DynamicRescheduler` —
   moves must buy back ``migration_cost`` per moved unit, except that a
   migration repairing a predicted QoS violation is always taken,
4. **measures** the placement on the ground-truth runner, folds the
   measured normalized times back into the online model, and flags
   measured QoS violations,
5. **logs** everything to the append-only :class:`EventLog` and emits a
   :class:`~repro.service.telemetry.MetricsSnapshot`.

Every stochastic choice derives from ``stable_seed`` labels, so a
seeded traffic day is fully deterministic: two runs produce
byte-identical event logs and snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._util import stable_seed
from repro.cluster.cluster import ClusterView
from repro.core.online import OnlineModel
from repro.errors import MeasurementFault, PlacementError, ServiceError
from repro.obs import recorder as _obs
from repro.placement.annealing import AnnealingSchedule
from repro.placement.assignment import Placement
from repro.placement.dynamic import units_moved
from repro.placement.objectives import (
    QoSConstraint,
    predict_placement,
    weighted_total_time,
)
from repro.placement.qos import QoSAwarePlacer
from repro.placement.throughput import ThroughputPlacer
from repro.service.admission import (
    AdmissionController,
    placement_without_job,
)
from repro.service.events import EventLog
from repro.service.jobs import Job
from repro.service.telemetry import MetricsSnapshot
from repro.sim.runner import ClusterRunner


@dataclass(frozen=True)
class ServiceConfig:
    """Operating knobs of the consolidation service.

    Parameters
    ----------
    admission_retries:
        Failed admission attempts a queued job may accumulate beyond
        its first before it is rejected (bounded retry).
    max_queue_depth:
        Arrivals beyond this queue depth are rejected immediately.
    reschedule_every:
        Epochs between placement searches (0 disables rescheduling).
    migration_cost:
        Predicted-total-time units one migrated VM unit must buy back
        (same gate as :class:`~repro.placement.dynamic.DynamicRescheduler`).
    schedule:
        Annealing schedule for the per-epoch searches.  Rescheduling
        assumes the paper's two-unit-slot hosts (the placers' random
        starts do).
    admission_candidates:
        Cap on node combinations the admission controller evaluates
        per decision (its ``max_candidates``).  The default matches
        the flat 8-node service; the scale layer lowers it per cell so
        admission latency stays bounded on 50-node cells.
    """

    admission_retries: int = 2
    max_queue_depth: int = 16
    reschedule_every: int = 1
    migration_cost: float = 0.02
    schedule: AnnealingSchedule = field(
        default_factory=lambda: AnnealingSchedule(iterations=600, restarts=2)
    )
    admission_candidates: int = 4096

    def __post_init__(self) -> None:
        if self.admission_retries < 0:
            raise ServiceError("admission_retries must be non-negative")
        if self.max_queue_depth < 0:
            raise ServiceError("max_queue_depth must be non-negative")
        if self.reschedule_every < 0:
            raise ServiceError("reschedule_every must be non-negative")
        if self.migration_cost < 0:
            raise ServiceError("migration_cost must be non-negative")
        if self.admission_candidates <= 0:
            raise ServiceError("admission_candidates must be positive")


@dataclass
class _QueuedJob:
    job: Job
    failures: int = 0


class ConsolidationService:
    """Admit, place, measure, learn — epoch after epoch.

    Parameters
    ----------
    runner:
        Ground-truth environment placements execute on.
    model:
        Prediction model; wrapped in an :class:`OnlineModel` unless one
        is passed directly, so measurements refine future predictions.
    stream:
        Arrival source exposing ``arrivals(epoch) -> List[Job]``
        (:class:`~repro.service.stream.WorkloadStream` or
        :class:`~repro.service.stream.FixedStream`).
    config:
        Operating knobs.
    seed:
        Root seed for searches and measurement repetitions.
    checkpoint_path:
        When set, a :class:`~repro.service.checkpoint.ServiceCheckpoint`
        is written (atomically) to this path after every completed
        epoch, so a crashed service can resume from its last epoch
        boundary via :meth:`restore`.
    cell_id:
        When this service is one cell of a sharded deployment
        (:mod:`repro.scale`), its cell id.  Every span its epochs
        record then carries a ``cell`` attribute (via
        :func:`repro.obs.recorder.ambient`).  ``None`` — the default —
        is the flat service, whose spans and events are byte-identical
        to releases before the scale layer existed.
    provider:
        Optional :class:`~repro.providers.base.CapacityProvider`
        backing the node pool.  The runner must be built at the
        provider's ``max_nodes`` ceiling.  An *elastic* provider adds a
        capacity phase at the head of every epoch (autoscaling, spot
        preemption, eviction + requeue of reclaimed tenants) plus
        additive snapshot/trace output; a non-elastic provider (the
        ``static`` backend) changes nothing — the day is byte-identical
        to a run with no provider at all.
    """

    def __init__(
        self,
        runner: ClusterRunner,
        model,
        stream,
        *,
        config: Optional[ServiceConfig] = None,
        seed: int = 0,
        checkpoint_path: Optional[str] = None,
        cell_id: Optional[int] = None,
        provider=None,
    ) -> None:
        if provider is not None and provider.max_nodes != runner.spec.num_nodes:
            raise ServiceError(
                f"runner has {runner.spec.num_nodes} nodes but the "
                f"provider's ceiling is {provider.max_nodes}; build the "
                f"runner at max_nodes so every mintable node id has a "
                f"physical identity"
            )
        self.runner = runner
        self.model = model if isinstance(model, OnlineModel) else OnlineModel(model)
        self.stream = stream
        self.config = config or ServiceConfig()
        self.seed = seed
        self.checkpoint_path = checkpoint_path
        self.cell_id = cell_id
        self.provider = provider
        # The admission controller shares the runner's degraded set
        # live: a workload whose profile needed a fallback is predicted
        # with the conservative ALL-max mapping from then on.
        self.admission = AdmissionController(
            self.model,
            runner.spec,
            max_candidates=self.config.admission_candidates,
            degraded_workloads=runner.faulted_workloads,
            capacity=provider,
        )
        self.log = EventLog()
        self.snapshots: List[MetricsSnapshot] = []

        self._placement: Optional[Placement] = None
        self._tenants: Dict[str, Job] = {}
        self._ends_at: Dict[str, int] = {}
        self._queue: List[_QueuedJob] = []
        self._pending_cancels: List[str] = []
        self._epochs_run = 0

        self._admitted = 0
        self._rejected = 0
        self._completed = 0
        self._cancelled = 0
        self._migration_epochs = 0
        self._migrated_units = 0
        self._qos_checks = 0
        self._qos_violations = 0
        self._preempted = 0
        self._requeued = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def placement(self) -> Optional[Placement]:
        """Where the tenants currently sit (``None`` when empty)."""
        return self._placement

    @property
    def tenants(self) -> List[Job]:
        """Resident jobs, in admission order."""
        return list(self._tenants.values())

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting for admission."""
        return len(self._queue)

    @property
    def epochs_run(self) -> int:
        """Epochs the service has completed so far."""
        return self._epochs_run

    @property
    def cancelled_total(self) -> int:
        """Jobs cancelled (queued or resident) so far."""
        return self._cancelled

    @property
    def preempted_total(self) -> int:
        """Resident jobs evicted by spot preemption reclaims so far."""
        return self._preempted

    @property
    def requeued_total(self) -> int:
        """Jobs returned to the queue (preemption or vanished node)."""
        return self._requeued

    def live_node_count(self) -> int:
        """Nodes currently hosting work (the utilization denominator)."""
        if self.provider is not None:
            return len(self.provider.live_nodes())
        return self.runner.spec.num_nodes

    def schedulable_node_count(self) -> int:
        """Nodes accepting new work (the headroom numerator's pool)."""
        if self.provider is not None:
            return len(self.provider.schedulable_nodes())
        return self.runner.spec.num_nodes

    def utilization(self) -> float:
        """Occupied fraction of the live pool's unit slots."""
        slots = self.live_node_count() * self.admission.unit_slots_per_node
        occupied = sum(job.num_units for job in self._tenants.values())
        return occupied / slots if slots else 0.0

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> None:
        """Request cancellation of a queued or resident job.

        The request takes effect at the next epoch boundary: a queued
        job is dropped from the admission queue silently (no ``reject``
        is logged), a resident job departs its placement.  Both emit a
        ``job_cancel`` event when processed.  A job that departs
        naturally before the boundary makes the request a no-op.
        Pending requests survive checkpoints, so a resumed day honours
        them identically.
        """
        if job_id in self._pending_cancels:
            return
        queued = any(entry.job.job_id == job_id for entry in self._queue)
        if not queued and job_id not in self._tenants:
            raise ServiceError(
                f"job {job_id!r} is neither queued nor resident"
            )
        self._pending_cancels.append(job_id)

    def _process_cancels(self, epoch: int) -> None:
        for job_id in self._pending_cancels:
            entry = next(
                (e for e in self._queue if e.job.job_id == job_id), None
            )
            if entry is not None:
                self._queue.remove(entry)
                self._cancelled += 1
                self.log.append(
                    "job_cancel",
                    epoch,
                    job=job_id,
                    workload=entry.job.workload,
                    state="queued",
                )
                continue
            job = self._tenants.pop(job_id, None)
            if job is None:
                # Departed (or was rejected) before the boundary.
                continue
            del self._ends_at[job_id]
            self._placement = placement_without_job(self._placement, job_id)
            self._cancelled += 1
            self.log.append(
                "job_cancel",
                epoch,
                job=job_id,
                workload=job.workload,
                state="running",
                epochs_resident=epoch - job.arrival_epoch,
            )
        self._pending_cancels = []

    # ------------------------------------------------------------------
    # Epoch phases
    # ------------------------------------------------------------------
    def _occupied_nodes(self) -> set:
        """Node ids hosting at least one resident unit."""
        occupied: set = set()
        if self._placement is not None:
            for spec in self._placement.instances:
                occupied.update(
                    self._placement.nodes_of(spec.instance_key)
                )
        return occupied

    def _qos_margin(self) -> Optional[float]:
        """Worst predicted QoS headroom (bound minus prediction).

        ``None`` when no mission-critical tenant is resident — the
        autoscaler then scales on queue depth alone.
        """
        constraints = self._constraints()
        if not constraints or self._placement is None:
            return None
        predictions = predict_placement(self.model, self._placement)
        return min(
            c.max_normalized_time - predictions[c.instance_key]
            for c in constraints
        )

    def _capacity(self, epoch: int) -> None:
        """Apply the provider's pool changes for this boundary.

        Autoscaling reads the *previous* boundary's pressure signals
        (queue depth, predicted mission-critical margin, idle nodes);
        preemption reclaims evict any still-resident tenants, which are
        requeued at the *front* of the admission queue (bypassing
        ``max_queue_depth`` — an admitted batch job is never dropped by
        a reclaim) with their retry counters reset.
        """
        occupied = self._occupied_nodes()
        idle = [
            n for n in self.provider.schedulable_nodes()
            if n not in occupied
        ]
        events = self.provider.step(
            epoch,
            queue_depth=len(self._queue),
            qos_margin=self._qos_margin(),
            idle_nodes=idle,
        )
        for event in events:
            payload = dict(event.details)
            payload["nodes"] = list(event.nodes)
            if event.node_class is not None:
                payload["node_class"] = event.node_class
            if event.reason is not None:
                payload["reason"] = event.reason
            self.log.append(event.kind, epoch, **payload)
            if event.kind == "autoscale":
                _obs.RECORDER.count("provider.autoscale")
            elif event.kind == "preempt_reclaim":
                _obs.RECORDER.count(
                    "provider.preemptions", len(event.nodes)
                )
                self._evict_reclaimed(epoch, event.nodes)
        live = self.provider.live_nodes()
        spot = sum(1 for n in live if self.provider.is_spot(n))
        _obs.RECORDER.gauge("provider.pool_size", len(live))
        _obs.RECORDER.gauge(
            "provider.spot_fraction", spot / len(live) if live else 0.0
        )

    def _evict_reclaimed(self, epoch: int, nodes) -> None:
        """Evict tenants resident on reclaimed nodes; requeue them.

        Mission-critical tenants are admitted only onto durable nodes,
        so everything evicted here is batch work: it re-enters the
        queue at the front (in admission order) and restarts when
        capacity allows.
        """
        if self._placement is None:
            return
        reclaimed = set(nodes)
        evicted = [
            job for job_id, job in self._tenants.items()
            if reclaimed & set(self._placement.nodes_of(job_id))
        ]
        for job in evicted:
            old_nodes = list(self._placement.nodes_of(job.job_id))
            del self._tenants[job.job_id]
            del self._ends_at[job.job_id]
            self._placement = placement_without_job(
                self._placement, job.job_id
            )
            self._preempted += 1
            self._requeued += 1
            _obs.RECORDER.count("provider.requeues")
            self.log.append(
                "job_requeue",
                epoch,
                job=job.job_id,
                workload=job.workload,
                reason="preempted",
                nodes=old_nodes,
            )
        self._queue[:0] = [_QueuedJob(job) for job in evicted]

    def _depart(self, epoch: int) -> None:
        for job_id in [
            key for key in self._tenants if self._ends_at[key] <= epoch
        ]:
            job = self._tenants.pop(job_id)
            del self._ends_at[job_id]
            self._placement = placement_without_job(self._placement, job_id)
            self._completed += 1
            self.log.append(
                "depart",
                epoch,
                job=job_id,
                workload=job.workload,
                epochs_resident=job.duration_epochs,
            )

    def _arrive(self, epoch: int) -> None:
        for job in self.stream.arrivals(epoch):
            self.log.append(
                "arrival",
                epoch,
                job=job.job_id,
                workload=job.workload,
                units=job.num_units,
                duration=job.duration_epochs,
                qos_target=job.qos_target,
            )
            if len(self._queue) >= self.config.max_queue_depth:
                self._rejected += 1
                self.log.append(
                    "reject", epoch, job=job.job_id, reason="queue-full"
                )
                continue
            self._queue.append(_QueuedJob(job))

    def _admit(self, epoch: int) -> None:
        still_waiting: List[_QueuedJob] = []
        for entry in self._queue:
            decision = self.admission.try_admit(
                self._placement, self.tenants, entry.job
            )
            if decision.admitted and not self.admission.decision_still_valid(
                decision
            ):
                # A node vanished between the admission prediction and
                # its commit (a reclaim racing the admit phase).  The
                # job stays queued — without burning a retry — instead
                # of raising deep inside the epoch body.
                self._requeued += 1
                still_waiting.append(entry)
                self.log.append(
                    "job_requeue",
                    epoch,
                    job=entry.job.job_id,
                    workload=entry.job.workload,
                    reason="node-vanished",
                    nodes=list(
                        decision.placement.nodes_of(entry.job.job_id)
                    ),
                )
                continue
            if decision.admitted:
                job = entry.job
                self._placement = decision.placement
                self._tenants[job.job_id] = job
                self._ends_at[job.job_id] = epoch + job.duration_epochs
                self._admitted += 1
                assert decision.predictions is not None
                self.log.append(
                    "admit",
                    epoch,
                    job=job.job_id,
                    workload=job.workload,
                    nodes=list(decision.placement.nodes_of(job.job_id)),
                    predicted=decision.predictions[job.job_id],
                    waited=entry.failures,
                    candidates=decision.candidates_evaluated,
                )
                continue
            entry.failures += 1
            if entry.failures > self.config.admission_retries:
                self._rejected += 1
                self.log.append(
                    "reject",
                    epoch,
                    job=entry.job.job_id,
                    reason=decision.reason,
                    attempts=entry.failures,
                )
            else:
                still_waiting.append(entry)
                self.log.append(
                    "queue",
                    epoch,
                    job=entry.job.job_id,
                    reason=decision.reason,
                    attempts=entry.failures,
                )
        self._queue = still_waiting

    def _constraints(self) -> List[QoSConstraint]:
        constraints = [
            job.qos_constraint()
            for job in self._tenants.values()
            if job.mission_critical
        ]
        return [c for c in constraints if c is not None]

    def _search_candidate(
        self, epoch: int, allowed: Optional[List[int]] = None
    ) -> Placement:
        """Search a fresh placement, optionally restricted to ``allowed``.

        With ``allowed`` a strict subset of the runner's nodes (the
        elastic pool's schedulable set), the placers run on a compact
        :class:`~repro.cluster.cluster.ClusterView` — a re-indexed
        spec over just those nodes — and the winning assignment is
        lifted back to physical ids.  The search seed is unchanged, so
        full-pool searches stay byte-identical to releases without
        views.
        """
        instances = [job.instance_spec() for job in self._tenants.values()]
        seed = stable_seed(self.seed, "resched", epoch)
        constraints = self._constraints()
        spec = self.runner.spec
        view: Optional[ClusterView] = None
        if allowed is not None and len(allowed) < spec.num_nodes:
            view = ClusterView.of(spec, allowed)
            spec = view.spec
        if constraints:
            placer = QoSAwarePlacer(
                self.model,
                spec,
                constraints,
                schedule=self.config.schedule,
                seed=seed,
            )
            candidate = placer.place(instances).placement
        else:
            placer = ThroughputPlacer(
                self.model,
                spec,
                schedule=self.config.schedule,
                seed=seed,
            )
            candidate = placer.best(instances).placement
        if view is None:
            return candidate
        assignment = view.lift_assignment({
            spec_.instance_key: candidate.nodes_of(spec_.instance_key)
            for spec_ in candidate.instances
        })
        return Placement(
            self.runner.spec,
            list(candidate.instances),
            assignment,
            unit_slots_per_node=candidate.unit_slots_per_node,
        )

    def _lost_nodes(self) -> set:
        """Occupied nodes no longer schedulable (draining or reclaimed)."""
        if self.provider is None or not self.provider.elastic:
            return set()
        if self._placement is None:
            return set()
        return self._occupied_nodes() - set(
            self.provider.schedulable_nodes()
        )

    def _reschedule(self, epoch: int) -> None:
        every = self.config.reschedule_every
        lost = self._lost_nodes()
        if not lost and (
            every == 0
            or epoch == 0
            or epoch % every != 0
            or self._placement is None
            or len(self._tenants) < 2
        ):
            return
        if self._placement is None or not self._tenants:
            return
        allowed: Optional[List[int]] = None
        if self.provider is not None and self.provider.elastic:
            allowed = self.provider.schedulable_nodes()
        try:
            candidate = self._search_candidate(epoch, allowed)
        except PlacementError:
            # The shrunken pool cannot hold the resident mix (e.g. a
            # drain mid-warning with nowhere to go yet); tenants ride
            # out the warning window where they are.
            return
        if self.provider is not None and self.provider.elastic:
            # Admission never puts a mission-critical tenant on spot
            # capacity; migration honours the same invariant.  A
            # candidate that would move one onto a preemptible node is
            # discarded — tenants stay put rather than trade a QoS
            # bound for a reclaim risk.
            for job_id, job in self._tenants.items():
                if job.mission_critical and any(
                    self.provider.is_spot(node)
                    for node in candidate.nodes_of(job_id)
                ):
                    return
        constraints = self._constraints()
        current_predictions = predict_placement(self.model, self._placement)
        candidate_predictions = predict_placement(self.model, candidate)
        current_violation = sum(
            c.violation(current_predictions) for c in constraints
        )
        candidate_violation = sum(
            c.violation(candidate_predictions) for c in constraints
        )
        # Evacuation overrides every gate: leaving units on a draining
        # node loses them at reclaim, which is strictly worse than any
        # predicted posture or migration bill.
        repairs_capacity = bool(lost)
        if candidate_violation > current_violation and not repairs_capacity:
            # Never migrate into a (predicted) worse QoS posture.
            return
        current_total = weighted_total_time(
            current_predictions, self._placement
        )
        candidate_total = weighted_total_time(candidate_predictions, candidate)
        moves = units_moved(self._placement, candidate)
        gain = current_total - candidate_total
        repairs_qos = candidate_violation < current_violation
        if not repairs_capacity and (
            moves == 0
            or not (repairs_qos or gain > self.config.migration_cost * moves)
        ):
            return
        if moves == 0:
            return
        self._placement = candidate
        self._migration_epochs += 1
        self._migrated_units += moves
        payload: Dict[str, object] = {}
        if repairs_capacity:
            payload["evacuated_nodes"] = sorted(lost)
        self.log.append(
            "migrate",
            epoch,
            moved_units=moves,
            predicted_gain=gain,
            repairs_qos=repairs_qos,
            predicted_total=candidate_total,
            **payload,
        )

    def _measure_and_learn(self, epoch: int) -> float:
        if self._placement is None:
            return 0.0
        predictions = predict_placement(self.model, self._placement)
        try:
            measured = self.runner.run_deployments(
                self._placement.deployments(),
                rep=stable_seed(self.seed, "measure", epoch),
            )
        except MeasurementFault as fault:
            # The ground-truth run exhausted its retry budget: this
            # epoch yields no measurement, so the model is not updated
            # and QoS cannot be checked.  The involved workloads are
            # now in the runner's degraded set, so future admission
            # predictions for them fall back to ALL-max.
            self.log.append(
                "measure_fault",
                epoch,
                workloads=sorted(set(fault.workload.split(","))),
                running=len(self._tenants),
            )
            return 0.0
        workload_of = {
            job_id: job.workload for job_id, job in self._tenants.items()
        }
        self.model.observe_placement(predictions, measured, workload_of)
        for job_id, job in self._tenants.items():
            if not job.mission_critical:
                continue
            self._qos_checks += 1
            assert job.qos_target is not None
            if measured[job_id] > job.qos_target:
                self._qos_violations += 1
                self.log.append(
                    "qos_violation",
                    epoch,
                    job=job_id,
                    workload=job.workload,
                    measured=measured[job_id],
                    bound=job.qos_target,
                    predicted=predictions[job_id],
                )
        return weighted_total_time(measured, self._placement)

    def _provider_block(self) -> Optional[Dict[str, object]]:
        """The snapshot's pool picture (``None`` unless elastic)."""
        if self.provider is None or not self.provider.elastic:
            return None
        live = self.provider.live_nodes()
        spot = sum(1 for n in live if self.provider.is_spot(n))
        draining = sum(1 for n in live if self.provider.is_draining(n))
        return {
            "pool_size": len(live),
            "durable_nodes": len(live) - spot,
            "spot_nodes": spot,
            "draining_nodes": draining,
            "spot_fraction": round(spot / len(live), 6) if live else 0.0,
            "preempted_total": self._preempted,
            "requeued_total": self._requeued,
        }

    def _snapshot(self, epoch: int) -> MetricsSnapshot:
        staleness = self.model.staleness_report()
        observed = {workload for workload, count, _, _ in staleness if count > 0}
        snapshot = MetricsSnapshot(
            epoch=epoch,
            running_jobs=len(self._tenants),
            queued_jobs=len(self._queue),
            utilization=self.utilization(),
            admitted_total=self._admitted,
            rejected_total=self._rejected,
            completed_total=self._completed,
            migration_epochs_total=self._migration_epochs,
            migrated_units_total=self._migrated_units,
            qos_checks_total=self._qos_checks,
            qos_violations_total=self._qos_violations,
            model_observations=sum(count for _, count, _, _ in staleness),
            unobserved_workloads=len(
                [w for w in self.model.workloads if w not in observed]
            ),
            provider=self._provider_block(),
        )
        self.snapshots.append(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    def run(self, epochs: int) -> List[MetricsSnapshot]:
        """Advance the service by ``epochs`` epochs.

        Callable repeatedly: epoch numbering continues where the last
        call stopped, so ``run(3); run(3)`` replays the same traffic
        day as ``run(6)``.

        Returns
        -------
        list of MetricsSnapshot
            One snapshot per newly run epoch.
        """
        if epochs <= 0:
            raise ServiceError("epochs must be positive")
        fresh: List[MetricsSnapshot] = []
        for epoch in range(self._epochs_run, self._epochs_run + epochs):
            fresh.append(self.run_epoch(epoch))
        return fresh

    def run_epoch(self, epoch: int) -> MetricsSnapshot:
        """Run exactly one epoch (the next one due).

        The reusable epoch body the scale layer drives per cell:
        depart, arrive, admit, reschedule, measure-and-learn, snapshot,
        ``epoch_end``.  ``epoch`` must be the service's next epoch —
        epochs cannot be skipped or replayed.  When :attr:`cell_id` is
        set, every span recorded inside carries a ``cell`` attribute.
        """
        if epoch != self._epochs_run:
            raise ServiceError(
                f"epoch {epoch} is not next (service has run "
                f"{self._epochs_run})"
            )
        if self.cell_id is None:
            snapshot = self._epoch_body(epoch)
        else:
            with _obs.ambient(cell=self.cell_id):
                snapshot = self._epoch_body(epoch)
        self._epochs_run = epoch + 1
        if self.checkpoint_path is not None:
            self.checkpoint().save(self.checkpoint_path)
        return snapshot

    def _epoch_body(self, epoch: int) -> MetricsSnapshot:
        # The epoch span cross-links to the EventLog: log_seq_start
        # and log_seq_end bracket the sequence numbers this epoch
        # appended, so a trace row resolves to its event-log lines.
        with _obs.RECORDER.span(
            "service.epoch", epoch=epoch, log_seq_start=len(self.log)
        ) as espan:
            if self.provider is not None and self.provider.elastic:
                # Spanned (and run) only on elastic pools, so fixed-pool
                # days — including ``--provider static`` — trace
                # byte-identically to releases without the provider
                # layer.
                with _obs.RECORDER.span(
                    "provider.capacity",
                    epoch=epoch,
                    pool_size=len(self.provider.live_nodes()),
                ):
                    self._capacity(epoch)
            if self._pending_cancels:
                # Spanned only when requests are pending, so cancel-free
                # days trace byte-identically to releases without the
                # cancellation path.
                with _obs.RECORDER.span(
                    "service.cancel",
                    epoch=epoch,
                    requests=len(self._pending_cancels),
                ):
                    self._process_cancels(epoch)
            with _obs.RECORDER.span("service.depart", epoch=epoch):
                self._depart(epoch)
            with _obs.RECORDER.span("service.arrive", epoch=epoch):
                self._arrive(epoch)
            with _obs.RECORDER.span("service.admit", epoch=epoch):
                self._admit(epoch)
            with _obs.RECORDER.span("service.reschedule", epoch=epoch):
                self._reschedule(epoch)
            with _obs.RECORDER.span("service.measure", epoch=epoch):
                measured_total = self._measure_and_learn(epoch)
            snapshot = self._snapshot(epoch)
            self.log.append(
                "epoch_end",
                epoch,
                running=snapshot.running_jobs,
                queued=snapshot.queued_jobs,
                utilization=snapshot.utilization,
                measured_total=measured_total,
            )
            _obs.RECORDER.count("service.epochs")
            espan.set(
                running=snapshot.running_jobs,
                queued=snapshot.queued_jobs,
                measured_total=measured_total,
                log_seq_end=len(self.log),
            ).set_sim(measured_total)
        return snapshot

    # ------------------------------------------------------------------
    # Cross-cell transfer hooks (the scale layer's coordinator)
    # ------------------------------------------------------------------
    def transfer_out(self, job_id: str) -> Tuple[Job, int]:
        """Evict a tenant for a cross-cell move; returns ``(job, ends_at)``.

        No ``depart`` event is logged — the tenancy continues in the
        destination cell, which logs its eventual departure.  Only the
        :class:`~repro.scale.coordinator.GlobalCoordinator` should call
        this, paired with :meth:`admit_transfer` on the destination.
        """
        if job_id not in self._tenants:
            raise ServiceError(f"job {job_id!r} is not a tenant")
        job = self._tenants.pop(job_id)
        ends_at = self._ends_at.pop(job_id)
        self._placement = placement_without_job(self._placement, job_id)
        return job, ends_at

    def admit_transfer(self, job: Job, ends_at: int, decision) -> None:
        """Install a cross-cell transferee admitted by this cell.

        ``decision`` is an admitted
        :class:`~repro.service.admission.AdmissionDecision` produced by
        this service's own :attr:`admission` controller against its
        current placement.  The tenancy keeps its absolute ``ends_at``
        epoch, so a moved job departs on schedule in its new cell.
        """
        if not decision.admitted or decision.placement is None:
            raise ServiceError("admit_transfer needs an admitted decision")
        if job.job_id in self._tenants:
            raise ServiceError(f"job {job.job_id!r} is already a tenant")
        # Not counted in ``_admitted``: the job was admitted once, on
        # arrival; cross-cell moves are tracked by the scale layer.
        self._placement = decision.placement
        self._tenants[job.job_id] = job
        self._ends_at[job.job_id] = ends_at

    # ------------------------------------------------------------------
    # Crash safety
    # ------------------------------------------------------------------
    def checkpoint(self) -> "ServiceCheckpoint":
        """Capture the current epoch boundary's state."""
        from repro.service.checkpoint import ServiceCheckpoint

        return ServiceCheckpoint.capture(self)

    def restore(
        self,
        checkpoint: "ServiceCheckpoint",
        *,
        log: Optional[EventLog] = None,
    ) -> None:
        """Resume from a checkpoint captured on an identical service.

        ``log`` is the recovered event log (usually
        :meth:`EventLog.recover` of the persisted file); it is
        validated against the checkpoint's boundary (a mismatched
        checkpoint/log pair fails with the epoch, path, and reason
        rather than replaying a diverged history), then adopted and
        truncated to the checkpoint's length — events appended by a
        partially completed epoch are re-derived when the epoch
        re-runs.  Without a ``log``, the service continues on an empty
        log whose sequence numbering starts at the checkpoint's
        boundary, so freshly appended events still carry their global
        sequence numbers.  Epoch numbering continues from the
        checkpoint's boundary, so the resumed run's log and snapshots
        come out byte-identical to an uninterrupted run's.
        """
        if self._epochs_run or len(self.log):
            raise ServiceError(
                "restore() requires a freshly constructed service"
            )
        checkpoint.restore(self)
        if log is None:
            self.log = EventLog(start_seq=checkpoint.log_length)
        else:
            log.validate_tail(checkpoint.log_length, checkpoint.epoch)
            log.truncate(checkpoint.log_length)
            self.log = log
