"""Service metrics: per-epoch operational snapshots.

A :class:`MetricsSnapshot` is the operator's dashboard row: cluster
utilization, admission totals, queue depth, QoS violation rate, and
model staleness (how much production evidence the online model has
absorbed).  Snapshots are plain data; the text rendering lives in
:func:`repro.analysis.reporting.render_service_snapshot` next to the
paper-table renderers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class MetricsSnapshot:
    """The service's counters at the end of one epoch.

    ``violation_rate`` is violations per QoS check (a check is one
    mission-critical tenant measured for one epoch), so it is
    comparable across runs with different traffic.  ``model_observations``
    and ``unobserved_workloads`` summarize the online model's
    staleness: how many measurements it has folded in, and how many of
    its workloads still predict purely from the static prior.

    ``cells`` is the scale layer's additive extension: a sharded
    deployment (:mod:`repro.scale`) aggregates its cell counters into
    the flat fields and attaches one per-cell row (occupancy, queue
    depth, worst predicted QoS margin, cross-cell migrations).  Flat
    services leave it ``None``, and a ``None`` value is omitted from
    :meth:`to_dict`, so the flat snapshot bytes are unchanged.

    ``provider`` is the elastic-capacity extension, following the same
    additive contract: a service running on an elastic provider
    attaches the pool picture (size, durable/spot/draining split,
    preemption and requeue totals).  Fixed-pool services — including
    ``--provider static`` — leave it ``None`` and serialize the exact
    bytes they always have.
    """

    epoch: int
    running_jobs: int
    queued_jobs: int
    utilization: float
    admitted_total: int
    rejected_total: int
    completed_total: int
    migration_epochs_total: int
    migrated_units_total: int
    qos_checks_total: int
    qos_violations_total: int
    model_observations: int
    unobserved_workloads: int
    cells: Optional[Tuple[Dict[str, object], ...]] = None
    provider: Optional[Dict[str, object]] = None

    @property
    def violation_rate(self) -> float:
        """QoS violations per mission-critical tenant-epoch."""
        if self.qos_checks_total == 0:
            return 0.0
        return self.qos_violations_total / self.qos_checks_total

    def to_dict(self) -> Dict[str, object]:
        """Flat, JSON-friendly view (includes derived rates).

        The ``cells`` key appears only for sharded snapshots, so the
        flat path's serialization stays byte-stable across releases.
        """
        entry: Dict[str, object] = {
            "epoch": self.epoch,
            "running_jobs": self.running_jobs,
            "queued_jobs": self.queued_jobs,
            "utilization": round(self.utilization, 6),
            "admitted_total": self.admitted_total,
            "rejected_total": self.rejected_total,
            "completed_total": self.completed_total,
            "migration_epochs_total": self.migration_epochs_total,
            "migrated_units_total": self.migrated_units_total,
            "qos_checks_total": self.qos_checks_total,
            "qos_violations_total": self.qos_violations_total,
            "violation_rate": round(self.violation_rate, 6),
            "model_observations": self.model_observations,
            "unobserved_workloads": self.unobserved_workloads,
        }
        if self.cells is not None:
            entry["cells"] = [dict(cell) for cell in self.cells]
        if self.provider is not None:
            entry["provider"] = dict(self.provider)
        return entry

    @classmethod
    def from_dict(cls, entry: Dict[str, object]) -> "MetricsSnapshot":
        """Rebuild a snapshot from its :meth:`to_dict` form.

        Derived fields (``violation_rate``) are recomputed, not read;
        round-trips through JSON are exact because ``utilization`` was
        already rounded at serialization time.
        """
        fields = {
            "epoch", "running_jobs", "queued_jobs", "utilization",
            "admitted_total", "rejected_total", "completed_total",
            "migration_epochs_total", "migrated_units_total",
            "qos_checks_total", "qos_violations_total",
            "model_observations", "unobserved_workloads",
        }
        try:
            kwargs = {name: entry[name] for name in fields}
        except KeyError as exc:
            raise ValueError(f"snapshot entry missing {exc}") from exc
        kwargs["utilization"] = float(kwargs["utilization"])
        for name in fields - {"utilization"}:
            kwargs[name] = int(kwargs[name])
        if entry.get("cells") is not None:
            kwargs["cells"] = tuple(dict(cell) for cell in entry["cells"])
        if entry.get("provider") is not None:
            kwargs["provider"] = dict(entry["provider"])
        return cls(**kwargs)

    def rows(self) -> List[Tuple[str, object]]:
        """(metric, value) rows for table rendering.

        Sharded snapshots collapse the per-cell list to its length —
        the detailed rows live in the snapshot JSON, not the table.
        """
        rows = []
        for name, value in self.to_dict().items():
            if name == "cells":
                rows.append(("cells", len(self.cells or ())))
            else:
                rows.append((name, value))
        return rows
