"""Online consolidation service (the paper's §8 future work, served).

The offline reproduction answers "what is the best placement of this
fixed mix?"; this package answers "keep a *changing* mix placed well,
forever": a seeded job stream, QoS admission control over model
predictions, an epoch loop that measures, learns
(:class:`~repro.core.online.OnlineModel`), and migration-gates
rescheduling, and an operations layer (event log + metrics snapshots)
exposed through ``repro serve``.
"""

from repro.service.admission import (
    ADMITTED,
    NO_CAPACITY,
    QOS_INFEASIBLE,
    AdmissionController,
    AdmissionDecision,
    placement_with_job,
    placement_without_job,
)
from repro.service.checkpoint import CHECKPOINT_VERSION, ServiceCheckpoint
from repro.service.events import EVENT_KINDS, EventLog, ServiceEvent
from repro.service.jobs import Job
from repro.service.loop import ConsolidationService, ServiceConfig
from repro.service.stream import FixedStream, StreamConfig, WorkloadStream
from repro.service.telemetry import MetricsSnapshot

__all__ = [
    "ADMITTED",
    "AdmissionController",
    "AdmissionDecision",
    "CHECKPOINT_VERSION",
    "ConsolidationService",
    "EVENT_KINDS",
    "EventLog",
    "FixedStream",
    "Job",
    "MetricsSnapshot",
    "NO_CAPACITY",
    "QOS_INFEASIBLE",
    "ServiceCheckpoint",
    "ServiceConfig",
    "ServiceEvent",
    "StreamConfig",
    "WorkloadStream",
    "placement_with_job",
    "placement_without_job",
]
