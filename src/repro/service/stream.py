"""Seeded workload streams: deterministic job arrival generators.

The service simulates a traffic day as a sequence of epochs; this
module generates the per-epoch job arrivals.  Determinism is the load
bearing property — two runs with the same seed must see byte-identical
traffic — so each epoch draws from its own child generator keyed by
``stable_seed(seed, "stream", epoch)``: the arrivals of epoch *e* are a
pure function of the stream configuration and *e*, independent of how
many times (or in what order) other epochs were generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro._util import make_rng, stable_seed
from repro.errors import ServiceError
from repro.service.jobs import Job


@dataclass(frozen=True)
class StreamConfig:
    """Shape of the simulated traffic.

    Parameters
    ----------
    workloads:
        Catalog abbreviations jobs are drawn from (uniformly).
    arrival_rate:
        Mean arrivals per epoch (Poisson).
    unit_choices:
        Possible ``num_units`` values, drawn uniformly.
    duration_range:
        Inclusive (min, max) tenancy length in epochs.
    qos_fraction:
        Probability a job is mission-critical.
    qos_targets:
        Candidate QoS bounds for mission-critical jobs (uniform);
        defaults to the paper's 80%-of-solo bound.
    """

    workloads: Tuple[str, ...]
    arrival_rate: float = 1.0
    unit_choices: Tuple[int, ...] = (2, 4)
    duration_range: Tuple[int, int] = (2, 5)
    qos_fraction: float = 0.5
    qos_targets: Tuple[float, ...] = (1.25,)

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ServiceError("stream needs at least one workload")
        if self.arrival_rate < 0:
            raise ServiceError("arrival_rate must be non-negative")
        if not self.unit_choices or any(u <= 0 for u in self.unit_choices):
            raise ServiceError("unit_choices must be positive")
        low, high = self.duration_range
        if not 0 < low <= high:
            raise ServiceError("duration_range must satisfy 0 < min <= max")
        if not 0.0 <= self.qos_fraction <= 1.0:
            raise ServiceError("qos_fraction must be in [0, 1]")
        if not self.qos_targets or any(t < 1.0 for t in self.qos_targets):
            raise ServiceError("qos_targets must be >= 1.0")


class WorkloadStream:
    """Deterministic arrival generator over a :class:`StreamConfig`.

    Parameters
    ----------
    config:
        Traffic shape.
    seed:
        Root seed; epoch ``e``'s arrivals derive from
        ``stable_seed(seed, "stream", e)`` only.
    """

    def __init__(self, config: StreamConfig, *, seed: int = 0) -> None:
        self.config = config
        self.seed = seed

    def arrivals(self, epoch: int) -> List[Job]:
        """The jobs arriving at ``epoch`` (stable across calls)."""
        if epoch < 0:
            raise ServiceError("epoch must be non-negative")
        cfg = self.config
        rng = make_rng(stable_seed(self.seed, "stream", epoch))
        count = int(rng.poisson(cfg.arrival_rate))
        jobs: List[Job] = []
        low, high = cfg.duration_range
        for index in range(count):
            workload = cfg.workloads[int(rng.integers(len(cfg.workloads)))]
            units = cfg.unit_choices[int(rng.integers(len(cfg.unit_choices)))]
            duration = int(rng.integers(low, high + 1))
            target = None
            if float(rng.random()) < cfg.qos_fraction:
                target = cfg.qos_targets[int(rng.integers(len(cfg.qos_targets)))]
            jobs.append(
                Job(
                    job_id=f"{workload}@e{epoch}.{index}",
                    workload=workload,
                    num_units=units,
                    duration_epochs=duration,
                    arrival_epoch=epoch,
                    qos_target=target,
                )
            )
        return jobs


@dataclass(frozen=True)
class FixedStream:
    """A hand-written arrival schedule (tests, replayed traces).

    Parameters
    ----------
    schedule:
        All jobs, each tagged with its :attr:`Job.arrival_epoch`.
    """

    schedule: Tuple[Job, ...] = field(default_factory=tuple)

    def arrivals(self, epoch: int) -> List[Job]:
        """Jobs whose arrival epoch is ``epoch``, in schedule order."""
        return [job for job in self.schedule if job.arrival_epoch == epoch]
