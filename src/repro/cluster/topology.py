"""Interconnect model.

The testbed connects hosts via a single 10 GbE switch (Section 3.1), so
the topology is a uniform star: every inter-node message pays the same
base latency plus a per-participant serialization term.  Collective
costs here set the *baseline* communication component of iteration
times; they are deliberately contention-free because the paper's
interference source is the memory subsystem, not the network.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SwitchTopology:
    """Uniform single-switch interconnect.

    Parameters
    ----------
    base_latency:
        Fixed cost (simulated seconds) of any collective or message.
    per_node_cost:
        Additional cost per participating node, modelling the
        serialization of an allreduce/allgather over the star.
    """

    base_latency: float = 0.0005
    per_node_cost: float = 0.0001

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.per_node_cost < 0:
            raise ValueError("latencies must be non-negative")

    def point_to_point(self) -> float:
        """Cost of a single message between two hosts."""
        return self.base_latency

    def collective_cost(self, num_nodes: int) -> float:
        """Cost of one allreduce/barrier across ``num_nodes`` hosts."""
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        if num_nodes <= 1:
            return 0.0
        return self.base_latency + self.per_node_cost * num_nodes

    def shuffle_cost(self, num_nodes: int, data_scale: float = 1.0) -> float:
        """Cost of an all-to-all shuffle (Hadoop/Spark stage boundary)."""
        if data_scale < 0:
            raise ValueError("data_scale must be non-negative")
        return self.collective_cost(num_nodes) * (1.0 + data_scale)
