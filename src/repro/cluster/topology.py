"""Interconnect model.

The testbed connects hosts via a single 10 GbE switch (Section 3.1), so
the topology is a uniform star: every inter-node message pays the same
base latency plus a per-participant serialization term.  Collective
costs here set the *baseline* communication component of iteration
times.

The paper's interference source is the memory subsystem, so its
collectives are contention-free.  The NETWORK contention domain
(:class:`~repro.cluster.contention.ContentionDomain`) lifts that
restriction: each host's uplink to the switch is a *link* that
accumulates the network pressure of the flows crossing it
(:meth:`SwitchTopology.link_pressure`), and a collective crossing a
pressured link pays a congestion premium
(:meth:`SwitchTopology.collective_cost` with ``link_pressure``).  With
every link flat (pressure 0) the costs reduce exactly to the
contention-free star.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cluster.contention import ContentionDomain, combine_pressures
from repro.units import MAX_PRESSURE


@dataclass(frozen=True)
class SwitchTopology:
    """Uniform single-switch interconnect.

    Parameters
    ----------
    base_latency:
        Fixed cost (simulated seconds) of any collective or message.
    per_node_cost:
        Additional cost per participating node, modelling the
        serialization of an allreduce/allgather over the star.
    congestion_factor:
        Premium a collective pays when its most-loaded link sits at
        ``MAX_PRESSURE``: the cost scales by ``1 + congestion_factor``.
        The default 1.0 means a saturated uplink doubles the collective
        — the star serializes, so a full link halves effective
        goodput.
    """

    base_latency: float = 0.0005
    per_node_cost: float = 0.0001
    congestion_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.per_node_cost < 0:
            raise ValueError("latencies must be non-negative")
        if self.congestion_factor < 0:
            raise ValueError("congestion_factor must be non-negative")

    def point_to_point(self) -> float:
        """Cost of a single message between two hosts."""
        return self.base_latency

    def link_pressure(self, contributions: Iterable[float]) -> float:
        """Accumulated pressure on one link from the flows crossing it.

        In the star every host owns one uplink to the switch; the flows
        of all co-resident network-generating tenants share it.
        Contributions combine on the logarithmic pressure scale
        (:func:`~repro.cluster.contention.combine_pressures` in the
        NETWORK domain), mirroring how node-level bubble pressures
        combine in the COMPUTE domain.
        """
        return combine_pressures(
            contributions, domain=ContentionDomain.NETWORK
        )

    def collective_cost(
        self, num_nodes: int, *, link_pressure: float = 0.0
    ) -> float:
        """Cost of one allreduce/barrier across ``num_nodes`` hosts.

        The star-serialization formula: with a single switch, a
        collective is a gather followed by a broadcast, and every
        participant's payload crosses the shared switch in turn —

        ``cost = base_latency + per_node_cost * num_nodes``

        i.e. one fixed fan-in/fan-out latency plus one serialization
        slot per participating host.  A single participant performs no
        communication, so the cost is 0.

        ``link_pressure`` is the pressure on the collective's
        most-loaded uplink (0-``MAX_PRESSURE``); the congestion-aware
        cost scales linearly up to ``1 + congestion_factor`` at a
        saturated link.  The default 0.0 reproduces the contention-free
        cost bit for bit.

        Raises
        ------
        ValueError
            If ``num_nodes`` is not at least 1 — a collective needs a
            participant — or ``link_pressure`` lies outside
            ``[0, MAX_PRESSURE]``.
        """
        if num_nodes < 1:
            raise ValueError(
                f"a collective needs at least one participant; "
                f"got num_nodes={num_nodes}"
            )
        if not 0.0 <= link_pressure <= MAX_PRESSURE:
            raise ValueError(
                f"link_pressure must be in [0, {MAX_PRESSURE}]; "
                f"got {link_pressure!r}"
            )
        if num_nodes == 1:
            return 0.0
        cost = self.base_latency + self.per_node_cost * num_nodes
        if link_pressure > 0.0:
            cost *= 1.0 + self.congestion_factor * (
                link_pressure / MAX_PRESSURE
            )
        return cost

    def shuffle_cost(
        self, num_nodes: int, data_scale: float = 1.0,
        *, link_pressure: float = 0.0,
    ) -> float:
        """Cost of an all-to-all shuffle (Hadoop/Spark stage boundary)."""
        if data_scale < 0:
            raise ValueError("data_scale must be non-negative")
        return self.collective_cost(
            num_nodes, link_pressure=link_pressure
        ) * (1.0 + data_scale)
