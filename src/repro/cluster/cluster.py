"""Cluster of physical hosts.

The :class:`Cluster` owns the node inventory and enforces the paper's
deployment constraints: no vCPU over-commit and at most two distinct
workloads per host (pairwise interaction, Sections 3.1 and 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro._util import make_rng, stable_seed
from repro.cluster.node import PhysicalNode
from repro.errors import ConfigurationError
from repro.units import DEFAULT_CORES_PER_HOST, DEFAULT_NUM_HOSTS


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a homogeneous cluster.

    Parameters
    ----------
    num_nodes:
        Number of physical hosts.
    cores_per_node:
        Physical cores per host.
    memory_gb_per_node:
        DRAM per host.
    max_workloads_per_node:
        Distinct-workload co-location limit (2 in the paper).
    """

    num_nodes: int = DEFAULT_NUM_HOSTS
    cores_per_node: int = DEFAULT_CORES_PER_HOST
    memory_gb_per_node: int = 64
    max_workloads_per_node: int = 2

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if self.cores_per_node <= 0:
            raise ConfigurationError("cores_per_node must be positive")
        if self.max_workloads_per_node <= 0:
            raise ConfigurationError("max_workloads_per_node must be positive")

    @property
    def total_cores(self) -> int:
        """Aggregate physical cores across the cluster."""
        return self.num_nodes * self.cores_per_node


class Cluster:
    """A set of physical hosts with placement bookkeeping.

    Parameters
    ----------
    spec:
        Static cluster description; defaults to the paper's 8-node,
        16-core testbed.
    """

    def __init__(self, spec: ClusterSpec | None = None) -> None:
        self.spec = spec or ClusterSpec()
        self._nodes: List[PhysicalNode] = [
            PhysicalNode(
                node_id=i,
                cores=self.spec.cores_per_node,
                memory_gb=self.spec.memory_gb_per_node,
            )
            for i in range(self.spec.num_nodes)
        ]

    @classmethod
    def synthetic(
        cls,
        num_nodes: int,
        *,
        seed: int = 0,
        cores_choices: tuple = (16, 24, 32),
        memory_choices: tuple = (64, 128),
        max_workloads_per_node: int = 2,
    ) -> "Cluster":
        """A seeded, deterministic heterogeneous cluster of ``num_nodes``.

        Each node draws its core count and memory uniformly from the
        given choices using a generator keyed by
        ``stable_seed("synthetic-cluster", num_nodes, seed)``, so the
        same arguments always build the same inventory — what the
        scale-layer tests and benches need instead of hand-rolled node
        lists.  The :class:`ClusterSpec` records the *floor* of the
        core choices (placement and simulation size unit slots off the
        spec's homogeneous value; per-node heterogeneity lives on the
        :class:`~repro.cluster.node.PhysicalNode` inventory).
        """
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if not cores_choices or not memory_choices:
            raise ConfigurationError(
                "cores_choices and memory_choices must be non-empty"
            )
        spec = ClusterSpec(
            num_nodes=num_nodes,
            cores_per_node=min(int(c) for c in cores_choices),
            memory_gb_per_node=min(int(m) for m in memory_choices),
            max_workloads_per_node=max_workloads_per_node,
        )
        cluster = cls(spec)
        rng = make_rng(stable_seed("synthetic-cluster", num_nodes, seed))
        cluster._nodes = [
            PhysicalNode(
                node_id=i,
                cores=int(cores_choices[int(rng.integers(len(cores_choices)))]),
                memory_gb=int(
                    memory_choices[int(rng.integers(len(memory_choices)))]
                ),
            )
            for i in range(num_nodes)
        ]
        return cluster

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[PhysicalNode]:
        return iter(self._nodes)

    @property
    def nodes(self) -> List[PhysicalNode]:
        """The node inventory (live objects, index == node_id)."""
        return self._nodes

    def node(self, node_id: int) -> PhysicalNode:
        """Return the node with ``node_id``.

        Raises
        ------
        ConfigurationError
            If the id is out of range.
        """
        if not 0 <= node_id < len(self._nodes):
            raise ConfigurationError(
                f"node_id {node_id} out of range for {len(self._nodes)}-node cluster"
            )
        return self._nodes[node_id]

    def assign(self, instance_key: str, node_id: int, vcpus: int) -> None:
        """Reserve vCPUs for an instance on a node, enforcing limits."""
        self.node(node_id).assign(
            instance_key, vcpus, max_workloads=self.spec.max_workloads_per_node
        )

    def release(self, instance_key: str) -> None:
        """Release the instance's reservations on every node."""
        for node in self._nodes:
            node.release(instance_key)

    def clear(self) -> None:
        """Release every reservation on every node."""
        for node in self._nodes:
            node.clear()

    def occupancy(self) -> Dict[int, List[str]]:
        """Map of node id to the instance keys resident there."""
        return {node.node_id: node.resident_workloads for node in self._nodes}

    def nodes_hosting(self, instance_key: str) -> List[int]:
        """Sorted node ids where ``instance_key`` holds vCPUs."""
        return [
            node.node_id for node in self._nodes if node.vcpus_of(instance_key) > 0
        ]

    def co_runners_at(self, node_id: int, instance_key: str) -> List[str]:
        """Other instances sharing the given node with ``instance_key``."""
        return [
            key
            for key in self.node(node_id).resident_workloads
            if key != instance_key
        ]


@dataclass(frozen=True)
class ClusterView:
    """A contiguous re-indexed view over a subset of a cluster's nodes.

    The elastic provider layer shrinks and drains nodes mid-day, but
    the placement searches (:mod:`repro.placement`) are written against
    a dense ``0..num_nodes-1`` id space.  A view bridges the two: it
    maps the *allowed* physical node ids (live, non-draining) onto a
    compact virtual id space, hands the searches a correspondingly
    smaller :class:`ClusterSpec`, and lifts the resulting assignment
    back to physical ids.  When every node is allowed the view is the
    identity and callers skip it entirely, so fixed-capacity runs
    never pass through this translation.
    """

    base_spec: ClusterSpec
    physical_nodes: tuple

    @classmethod
    def of(cls, spec: ClusterSpec, nodes) -> "ClusterView":
        """View of ``spec`` restricted to the sorted physical ``nodes``."""
        allowed = tuple(sorted(int(n) for n in nodes))
        if not allowed:
            raise ConfigurationError("a cluster view needs at least one node")
        if len(set(allowed)) != len(allowed):
            raise ConfigurationError("view nodes must be unique")
        if allowed[0] < 0 or allowed[-1] >= spec.num_nodes:
            raise ConfigurationError(
                f"view nodes {allowed} out of range for "
                f"{spec.num_nodes}-node cluster"
            )
        return cls(base_spec=spec, physical_nodes=allowed)

    @property
    def spec(self) -> ClusterSpec:
        """The compact spec searches run against."""
        return ClusterSpec(
            num_nodes=len(self.physical_nodes),
            cores_per_node=self.base_spec.cores_per_node,
            memory_gb_per_node=self.base_spec.memory_gb_per_node,
            max_workloads_per_node=self.base_spec.max_workloads_per_node,
        )

    @property
    def is_identity(self) -> bool:
        """Whether the view covers the whole base cluster unchanged."""
        return len(self.physical_nodes) == self.base_spec.num_nodes

    def to_physical(self, virtual_node: int) -> int:
        """The physical id behind a virtual one."""
        return self.physical_nodes[virtual_node]

    def lift_assignment(self, assignment: Dict[str, tuple]) -> Dict[str, tuple]:
        """Translate a virtual-id assignment to physical node ids."""
        return {
            key: tuple(self.physical_nodes[int(v)] for v in nodes)
            for key, nodes in assignment.items()
        }
