"""Consolidated-cluster substrate: hosts, VMs, and contention.

This subpackage models the physical layer of the paper's testbed
(Section 3.1): an 8-node cluster of 16-core hosts running dual-vCPU
VMs, with shared LLC / memory-bandwidth contention abstracted to the
bubble-pressure scale.
"""

from repro.cluster.cluster import Cluster, ClusterSpec, ClusterView
from repro.cluster.contention import (
    ContentionDomain,
    DOMAIN_COLLISION_SURCHARGE,
    ExponentialSensitivity,
    FlatSensitivity,
    LinearSensitivity,
    SensitivityFunction,
    combine_pressures,
)
from repro.cluster.node import PhysicalNode
from repro.cluster.resources import (
    MemorySubsystem,
    miss_rate_to_pressure,
    pressure_to_miss_rate,
)
from repro.cluster.topology import SwitchTopology
from repro.cluster.vm import VirtualMachine, VMUnit

__all__ = [
    "Cluster",
    "ClusterSpec",
    "ClusterView",
    "ContentionDomain",
    "DOMAIN_COLLISION_SURCHARGE",
    "ExponentialSensitivity",
    "FlatSensitivity",
    "LinearSensitivity",
    "MemorySubsystem",
    "PhysicalNode",
    "SensitivityFunction",
    "SwitchTopology",
    "VMUnit",
    "VirtualMachine",
    "combine_pressures",
    "miss_rate_to_pressure",
    "pressure_to_miss_rate",
]
