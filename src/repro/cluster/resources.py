"""Shared memory-subsystem resource accounting.

Bubble pressure is a *logarithmic* index of LLC miss traffic: one
pressure level corresponds to a doubling of LLC misses (Section 4.4).
This module makes that correspondence explicit so code that needs
physical-ish quantities (the bubble generator design, diagnostics and
reports) can convert between the pressure scale and miss traffic, and
provides per-node capacity constants matching the testbed's Xeon
E5-2650 pair (20 MB LLC per socket, ~51.2 GB/s per socket).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import MAX_PRESSURE, validate_pressure

#: LLC miss traffic (millions of misses/sec) corresponding to pressure 1.
BASE_MISS_RATE_M_PER_S: float = 2.0


@dataclass(frozen=True)
class MemorySubsystem:
    """Per-node shared memory resources.

    Parameters
    ----------
    llc_mb:
        Last-level cache capacity in MB (two sockets on the testbed).
    bandwidth_gbps:
        Aggregate memory bandwidth in GB/s.
    """

    llc_mb: float = 40.0
    bandwidth_gbps: float = 102.4

    def __post_init__(self) -> None:
        if self.llc_mb <= 0:
            raise ValueError("llc_mb must be positive")
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")

    def saturation_pressure(self) -> float:
        """Pressure at which the subsystem is considered saturated."""
        return MAX_PRESSURE


def pressure_to_miss_rate(pressure: float) -> float:
    """Convert bubble pressure to LLC miss traffic (M misses/sec).

    Pressure 0 maps to zero traffic; each +1 level doubles traffic.
    """
    pressure = validate_pressure(pressure)
    if pressure == 0.0:
        return 0.0
    return BASE_MISS_RATE_M_PER_S * 2.0 ** (pressure - 1.0)


def miss_rate_to_pressure(miss_rate: float) -> float:
    """Inverse of :func:`pressure_to_miss_rate`.

    Raises
    ------
    ValueError
        If ``miss_rate`` is negative.
    """
    if miss_rate < 0:
        raise ValueError("miss_rate must be non-negative")
    if miss_rate == 0.0:
        return 0.0
    return 1.0 + math.log2(miss_rate / BASE_MISS_RATE_M_PER_S)
