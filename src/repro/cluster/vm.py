"""Virtual machine and VM-unit abstractions.

The paper deploys applications as groups of dual-vCPU VMs and pins
*four VMs of the same application together* on a host (Section 3.1), so
the placement granularity is a :class:`VMUnit` of four VMs.  Section 5
then treats one unit as the atomic object the placement algorithms swap
between hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import DEFAULT_VCPUS_PER_VM, DEFAULT_VMS_PER_UNIT


@dataclass(frozen=True)
class VirtualMachine:
    """A single guest VM.

    Parameters
    ----------
    vm_id:
        Index of the VM within its owning application instance.
    vcpus:
        Virtual CPUs (the testbed uses 2).
    memory_gb:
        Guest memory (the testbed uses 5 GB).
    """

    vm_id: int
    vcpus: int = DEFAULT_VCPUS_PER_VM
    memory_gb: int = 5

    def __post_init__(self) -> None:
        if self.vm_id < 0:
            raise ValueError("vm_id must be non-negative")
        if self.vcpus <= 0:
            raise ValueError("vcpus must be positive")


@dataclass(frozen=True)
class VMUnit:
    """The atomic placement unit: ``vms`` co-scheduled VMs of one app.

    Parameters
    ----------
    instance_key:
        Identifier of the owning application instance.
    unit_index:
        Index of the unit within the instance (0-based).
    vms:
        Number of VMs grouped in the unit (the paper uses 4).
    vcpus_per_vm:
        vCPUs per member VM.
    """

    instance_key: str
    unit_index: int
    vms: int = DEFAULT_VMS_PER_UNIT
    vcpus_per_vm: int = DEFAULT_VCPUS_PER_VM

    def __post_init__(self) -> None:
        if self.unit_index < 0:
            raise ValueError("unit_index must be non-negative")
        if self.vms <= 0:
            raise ValueError("vms must be positive")
        if self.vcpus_per_vm <= 0:
            raise ValueError("vcpus_per_vm must be positive")

    @property
    def vcpus(self) -> int:
        """Total vCPUs the unit reserves on its host."""
        return self.vms * self.vcpus_per_vm

    @property
    def label(self) -> str:
        """Human-readable identifier, e.g. ``"M.lmps#0/u2"``."""
        return f"{self.instance_key}/u{self.unit_index}"
