"""Physical host model.

A :class:`PhysicalNode` mirrors one host of the paper's testbed
(Section 3.1): 16 physical cores, a shared last-level cache and memory
controller (represented by the contention domain — see
:mod:`repro.cluster.contention`), hosting up to 8 dual-vCPU VMs with no
vCPU over-commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import PlacementError
from repro.units import DEFAULT_CORES_PER_HOST


@dataclass
class PhysicalNode:
    """One physical host in the consolidated cluster.

    Parameters
    ----------
    node_id:
        Zero-based index of the host within its cluster.
    cores:
        Number of physical cores; vCPUs assigned to the node may not
        exceed this (the paper never over-commits).
    memory_gb:
        Host DRAM capacity; informational, used for validation only.
    """

    node_id: int
    cores: int = DEFAULT_CORES_PER_HOST
    memory_gb: int = 64
    _assigned_vcpus: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        if self.cores <= 0:
            raise ValueError("cores must be positive")

    @property
    def used_vcpus(self) -> int:
        """Total vCPUs currently assigned to this node."""
        return sum(self._assigned_vcpus.values())

    @property
    def free_vcpus(self) -> int:
        """vCPUs still available without over-committing cores."""
        return self.cores - self.used_vcpus

    @property
    def resident_workloads(self) -> List[str]:
        """Instance keys of workloads with vCPUs on this node."""
        return sorted(self._assigned_vcpus)

    def assign(self, instance_key: str, vcpus: int, *, max_workloads: int = 2) -> None:
        """Reserve ``vcpus`` cores for an application instance.

        Parameters
        ----------
        instance_key:
            Unique identifier of the application instance.
        vcpus:
            Number of vCPUs to reserve (added to any existing
            reservation for the same instance).
        max_workloads:
            Maximum number of *distinct* instances allowed on the node.
            The paper's model handles pairwise interaction only, so the
            default is 2 (Section 3.1).

        Raises
        ------
        PlacementError
            If the node would over-commit its cores or exceed the
            distinct-workload limit.
        """
        if vcpus <= 0:
            raise ValueError("vcpus must be positive")
        if vcpus > self.free_vcpus:
            raise PlacementError(
                f"node {self.node_id}: cannot assign {vcpus} vCPUs to "
                f"{instance_key!r}; only {self.free_vcpus} free of {self.cores}"
            )
        distinct = set(self._assigned_vcpus)
        distinct.add(instance_key)
        if len(distinct) > max_workloads:
            raise PlacementError(
                f"node {self.node_id}: co-locating {sorted(distinct)} exceeds "
                f"the pairwise limit of {max_workloads} distinct workloads"
            )
        self._assigned_vcpus[instance_key] = (
            self._assigned_vcpus.get(instance_key, 0) + vcpus
        )

    def release(self, instance_key: str) -> None:
        """Release every vCPU held by ``instance_key`` on this node."""
        self._assigned_vcpus.pop(instance_key, None)

    def vcpus_of(self, instance_key: str) -> int:
        """vCPUs currently held by ``instance_key`` (0 if absent)."""
        return self._assigned_vcpus.get(instance_key, 0)

    def clear(self) -> None:
        """Release all reservations."""
        self._assigned_vcpus.clear()
