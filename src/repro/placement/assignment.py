"""Placement representation (Section 5.1).

A placement maps each application instance's VM *units* (4 VMs that
always travel together) onto physical nodes.  The paper's setup puts
four applications of four units each onto eight 16-core hosts: every
host carries exactly two units, so at most two distinct workloads share
a node — the pairwise co-location constraint the model requires.

:class:`Placement` is immutable; the annealing search produces new
placements through :meth:`Placement.swap_units`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro._util import make_rng
from repro.cluster.cluster import ClusterSpec
from repro.errors import PlacementError


@dataclass(frozen=True)
class InstanceSpec:
    """One application instance participating in a placement.

    Parameters
    ----------
    instance_key:
        Unique key, e.g. ``"M.Gems#2"`` (mix HM3 runs two instances of
        the same workload).
    workload:
        Catalog abbreviation.
    num_units:
        VM units the instance deploys (4 in Section 5's experiments).
    weight:
        Contribution to weighted objectives; the paper weights by VM
        count, equal for all instances in its mixes.
    """

    instance_key: str
    workload: str
    num_units: int = 4
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.num_units <= 0:
            raise PlacementError("num_units must be positive")
        if self.weight <= 0:
            raise PlacementError("weight must be positive")


class Placement:
    """An immutable assignment of instance units to nodes.

    Parameters
    ----------
    cluster_spec:
        Cluster shape and co-location limits.
    instances:
        Participating instances.
    assignment:
        For each instance key, the node id of each unit (a sequence of
        length ``num_units``).
    unit_slots_per_node:
        How many units fit on one host (2 on the paper's testbed:
        2 units x 4 VMs x 2 vCPUs = 16 cores).
    """

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        instances: Sequence[InstanceSpec],
        assignment: Mapping[str, Sequence[int]],
        *,
        unit_slots_per_node: int = 2,
    ) -> None:
        self.cluster_spec = cluster_spec
        self.instances: Tuple[InstanceSpec, ...] = tuple(instances)
        self.unit_slots_per_node = unit_slots_per_node
        self._by_key: Dict[str, InstanceSpec] = {
            spec.instance_key: spec for spec in self.instances
        }
        if len(self._by_key) != len(self.instances):
            raise PlacementError("instance keys must be unique")
        self._assignment: Dict[str, Tuple[int, ...]] = {
            key: tuple(int(n) for n in nodes) for key, nodes in assignment.items()
        }
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if set(self._assignment) != set(self._by_key):
            raise PlacementError(
                "assignment keys do not match the instance set: "
                f"{sorted(self._assignment)} vs {sorted(self._by_key)}"
            )
        load: Dict[int, int] = {}
        residents: Dict[int, set] = {}
        for key, nodes in self._assignment.items():
            spec = self._by_key[key]
            if len(nodes) != spec.num_units:
                raise PlacementError(
                    f"{key}: expected {spec.num_units} unit nodes, got {len(nodes)}"
                )
            if len(set(nodes)) != len(nodes):
                # A unit is defined as the 4 VMs of one application
                # co-scheduled on a host (Section 3.1), so a host never
                # carries two units of the same instance.
                raise PlacementError(
                    f"{key}: units must occupy distinct nodes, got {nodes}"
                )
            for node in nodes:
                if not 0 <= node < self.cluster_spec.num_nodes:
                    raise PlacementError(f"{key}: node {node} out of range")
                load[node] = load.get(node, 0) + 1
                residents.setdefault(node, set()).add(key)
        for node, count in load.items():
            if count > self.unit_slots_per_node:
                raise PlacementError(
                    f"node {node} holds {count} units; capacity is "
                    f"{self.unit_slots_per_node}"
                )
        for node, keys in residents.items():
            if len(keys) > self.cluster_spec.max_workloads_per_node:
                raise PlacementError(
                    f"node {node} hosts {len(keys)} distinct workloads; "
                    f"the pairwise limit is "
                    f"{self.cluster_spec.max_workloads_per_node}"
                )

    # ------------------------------------------------------------------
    #: Shuffle attempts before giving up on a random valid placement.
    _RANDOM_ATTEMPTS = 500

    @classmethod
    def random(
        cls,
        cluster_spec: ClusterSpec,
        instances: Sequence[InstanceSpec],
        *,
        unit_slots_per_node: int = 2,
        seed: object = 0,
    ) -> "Placement":
        """Uniformly random *valid* placement over the node unit-slots.

        Rejection-samples shuffles of the slot list until the
        distinct-nodes-per-instance constraint holds (a large fraction
        of shuffles do for the paper's shapes).
        """
        rng = make_rng(seed)
        slots: List[int] = [
            node
            for node in range(cluster_spec.num_nodes)
            for _ in range(unit_slots_per_node)
        ]
        total_units = sum(spec.num_units for spec in instances)
        if total_units > len(slots):
            raise PlacementError(
                f"{total_units} units exceed {len(slots)} unit slots"
            )
        last_error: PlacementError | None = None
        for _ in range(cls._RANDOM_ATTEMPTS):
            order = rng.permutation(len(slots))
            assignment: Dict[str, List[int]] = {}
            cursor = 0
            for spec in instances:
                nodes = [
                    slots[int(order[cursor + u])] for u in range(spec.num_units)
                ]
                assignment[spec.instance_key] = nodes
                cursor += spec.num_units
            try:
                return cls(
                    cluster_spec,
                    instances,
                    assignment,
                    unit_slots_per_node=unit_slots_per_node,
                )
            except PlacementError as exc:
                last_error = exc
        raise PlacementError(
            f"no valid random placement found in {cls._RANDOM_ATTEMPTS} "
            f"attempts; last error: {last_error}"
        )

    # ------------------------------------------------------------------
    def instance(self, key: str) -> InstanceSpec:
        """The instance spec behind ``key``."""
        try:
            return self._by_key[key]
        except KeyError:
            raise PlacementError(f"unknown instance {key!r}") from None

    def nodes_of(self, key: str) -> Tuple[int, ...]:
        """Node of each unit of ``key`` (index = unit index)."""
        self.instance(key)
        return self._assignment[key]

    def units_to_nodes(self, key: str) -> Dict[int, int]:
        """Unit-to-node mapping suitable for deployment."""
        return dict(enumerate(self.nodes_of(key)))

    def spanned_nodes(self, key: str) -> List[int]:
        """Sorted distinct nodes ``key`` occupies."""
        return sorted(set(self.nodes_of(key)))

    def co_runner_workloads(self, key: str) -> Dict[int, List[str]]:
        """Per-node workload names of other instances' resident units.

        This is the model-facing view: for each node the instance
        spans, which workloads (one entry per unit, repeats allowed)
        would pressure it there.
        """
        spanned = set(self.nodes_of(key))
        result: Dict[int, List[str]] = {node: [] for node in spanned}
        for other_key, nodes in self._assignment.items():
            if other_key == key:
                continue
            workload = self._by_key[other_key].workload
            for node in nodes:
                if node in spanned:
                    result[node].append(workload)
        return result

    def node_residents(self) -> Dict[int, List[Tuple[str, str]]]:
        """Per-node ``(instance_key, workload)`` of every resident unit.

        The single-pass complement of :meth:`co_runner_workloads`:
        filtering a node's residents by ``instance_key != key`` yields
        exactly that method's per-node co-runner list, in the same
        assignment order — which is what lets batch prediction extract
        every instance's pressure vector from one sweep instead of one
        quadratic pass per instance.
        """
        residents: Dict[int, List[Tuple[str, str]]] = {}
        for key, nodes in self._assignment.items():
            workload = self._by_key[key].workload
            for node in nodes:
                residents.setdefault(node, []).append((key, workload))
        return residents

    def swap_units(
        self, key_a: str, unit_a: int, key_b: str, unit_b: int
    ) -> "Placement":
        """New placement with two units' nodes exchanged.

        Raises
        ------
        PlacementError
            If indices are invalid or the swap violates constraints.
        """
        nodes_a = self.nodes_of(key_a)
        nodes_b = self.nodes_of(key_b)
        if not 0 <= unit_a < len(nodes_a):
            raise PlacementError(f"{key_a}: unit index {unit_a} out of range")
        if not 0 <= unit_b < len(nodes_b):
            raise PlacementError(f"{key_b}: unit index {unit_b} out of range")
        if key_a == key_b:
            raise PlacementError("swap requires two different instances")
        node_a, node_b = nodes_a[unit_a], nodes_b[unit_b]
        # A 1-for-1 exchange leaves every node's unit count (and, since
        # each resident unit belongs to a distinct instance, its
        # workload count) untouched, so the only rule a swap can break
        # is distinct-nodes-per-instance.  Checking just that keeps the
        # annealing search off the full O(units) validation pass.
        if node_b != node_a:
            if node_b in nodes_a:
                raise PlacementError(
                    f"{key_a}: units must occupy distinct nodes; "
                    f"already on node {node_b}"
                )
            if node_a in nodes_b:
                raise PlacementError(
                    f"{key_b}: units must occupy distinct nodes; "
                    f"already on node {node_a}"
                )
        swapped_a = list(nodes_a)
        swapped_b = list(nodes_b)
        swapped_a[unit_a], swapped_b[unit_b] = node_b, node_a
        assignment = dict(self._assignment)
        assignment[key_a] = tuple(swapped_a)
        assignment[key_b] = tuple(swapped_b)
        clone = Placement.__new__(Placement)
        clone.cluster_spec = self.cluster_spec
        clone.instances = self.instances
        clone.unit_slots_per_node = self.unit_slots_per_node
        clone._by_key = self._by_key
        clone._assignment = assignment
        return clone

    def deployments(self) -> List[Tuple[str, str, Dict[int, int]]]:
        """(instance key, workload, unit->node) triples for execution."""
        return [
            (spec.instance_key, spec.workload, self.units_to_nodes(spec.instance_key))
            for spec in self.instances
        ]

    def occupancy(self) -> Dict[int, List[str]]:
        """Sorted instance keys per node (diagnostics, reporting)."""
        result: Dict[int, List[str]] = {}
        for key, nodes in sorted(self._assignment.items()):
            for node in nodes:
                result.setdefault(node, []).append(key)
        return {node: sorted(keys) for node, keys in result.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, v) for k, v in self._assignment.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Placement({self._assignment})"
