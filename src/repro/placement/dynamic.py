"""Epoch-based dynamic rescheduling.

The paper's related work (§7) surveys schedulers that *migrate* VMs
when measured interference diverges from expectations; its own model is
static.  This module closes that loop with the pieces the reproduction
already has:

1. run the current placement for an epoch and measure it,
2. fold the measurements into an :class:`~repro.core.online.OnlineModel`
   (so systematic prediction bias decays),
3. search for a better placement with the refined model, and
4. migrate only if the predicted gain exceeds the migration cost
   (proportional to the number of VM units that would move).

The rescheduler is deliberately conservative: with an accurate model it
converges to a good placement within an epoch or two and then stays
put, because further moves cannot buy back their migration cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro._util import stable_seed
from repro.core.online import OnlineModel
from repro.errors import PlacementError
from repro.placement.annealing import AnnealingSchedule
from repro.placement.assignment import InstanceSpec, Placement
from repro.placement.objectives import predict_placement, weighted_total_time
from repro.placement.throughput import ThroughputPlacer
from repro.sim.runner import ClusterRunner


def units_moved(before: Placement, after: Placement) -> int:
    """Number of VM units whose node changes between two placements."""
    moved = 0
    for spec in before.instances:
        old = before.nodes_of(spec.instance_key)
        new = after.nodes_of(spec.instance_key)
        if len(old) != len(new):
            raise PlacementError(
                f"{spec.instance_key}: unit count changed across placements"
            )
        moved += sum(1 for a, b in zip(old, new) if a != b)
    return moved


@dataclass(frozen=True)
class EpochRecord:
    """Outcome of one rescheduling epoch."""

    epoch: int
    placement: Placement
    predicted_total: float
    measured_total: float
    measured_times: Dict[str, float]
    migrated_units: int

    @property
    def migrated(self) -> bool:
        """Whether this epoch started with a migration."""
        return self.migrated_units > 0


class DynamicRescheduler:
    """Measure, learn, and re-place across epochs.

    Parameters
    ----------
    runner:
        Ground-truth environment the placements execute on.
    model:
        Prediction model; wrapped in an :class:`OnlineModel` unless one
        is passed directly.
    instances:
        The application mix to keep placed.
    migration_cost:
        Predicted-total-time units a single VM-unit migration must buy
        back before a move is worthwhile.
    schedule:
        Annealing schedule for the per-epoch searches.
    seed:
        Root randomness for initial placement and searches.
    """

    def __init__(
        self,
        runner: ClusterRunner,
        model,
        instances: Sequence[InstanceSpec],
        *,
        migration_cost: float = 0.02,
        schedule: Optional[AnnealingSchedule] = None,
        seed: int = 0,
    ) -> None:
        if migration_cost < 0:
            raise PlacementError("migration_cost must be non-negative")
        self.runner = runner
        self.model = model if isinstance(model, OnlineModel) else OnlineModel(model)
        self.instances = list(instances)
        self.migration_cost = migration_cost
        self.schedule = schedule or AnnealingSchedule(iterations=800, restarts=2)
        self.seed = seed
        self._workload_of = {
            spec.instance_key: spec.workload for spec in self.instances
        }

    # ------------------------------------------------------------------
    def _search(self, epoch: int) -> Placement:
        placer = ThroughputPlacer(
            self.model,
            self.runner.spec,
            schedule=self.schedule,
            seed=stable_seed(self.seed, "dynamic", epoch),
        )
        return placer.best(self.instances).placement

    def _measure(self, placement: Placement, epoch: int) -> Dict[str, float]:
        return self.runner.run_deployments(
            placement.deployments(), rep=stable_seed(self.seed, "epoch", epoch)
        )

    def run(
        self, epochs: int, *, initial: Optional[Placement] = None
    ) -> List[EpochRecord]:
        """Run the measure/learn/re-place loop for ``epochs`` epochs.

        Parameters
        ----------
        epochs:
            Number of measure/learn/re-place rounds.
        initial:
            Existing placement to start from (an operator's current
            state); a random placement when omitted.
        """
        if epochs <= 0:
            raise PlacementError("epochs must be positive")
        placement = initial or Placement.random(
            self.runner.spec, self.instances, seed=stable_seed(self.seed, "init")
        )
        records: List[EpochRecord] = []
        for epoch in range(epochs):
            migrated = 0
            if epoch > 0:
                candidate = self._search(epoch)
                current_total = weighted_total_time(
                    predict_placement(self.model, placement), placement
                )
                candidate_total = weighted_total_time(
                    predict_placement(self.model, candidate), candidate
                )
                moves = units_moved(placement, candidate)
                gain = current_total - candidate_total
                if moves > 0 and gain > self.migration_cost * moves:
                    placement = candidate
                    migrated = moves

            predictions = predict_placement(self.model, placement)
            measured = self._measure(placement, epoch)
            self.model.observe_placement(predictions, measured, self._workload_of)
            records.append(
                EpochRecord(
                    epoch=epoch,
                    placement=placement,
                    predicted_total=weighted_total_time(predictions, placement),
                    measured_total=weighted_total_time(measured, placement),
                    measured_times=dict(measured),
                    migrated_units=migrated,
                )
            )
        return records
