"""Placement objectives and constraints (Sections 5.2-5.3).

The placement algorithms optimize over *model predictions*: a candidate
placement is scored by predicting every instance's normalized execution
time and aggregating.  Two aggregates appear in the paper:

* the **sum of normalized runtimes weighted by VM count** (Figure 10's
  right-hand axis), minimized by both placers; and
* **QoS feasibility**: a mission-critical application must retain a
  fraction of its solo performance (80% in the experiments, i.e.
  normalized time <= 1/0.8 = 1.25).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PlacementError
from repro.placement.assignment import Placement


def predict_placement(model, placement: Placement) -> Dict[str, float]:
    """Predicted normalized time per instance under a placement.

    ``model`` may be the interference-aware model or the naive
    proportional model — both expose ``predict_under_corunners``.
    Models exposing ``predict_placement_batch`` (the interference-aware
    family) are evaluated in one vectorized batch; results are
    bit-identical to :func:`predict_placement_scalar`, which remains
    the reference oracle.
    """
    batch = getattr(model, "predict_placement_batch", None)
    if batch is not None:
        return batch(placement)
    return predict_placement_scalar(model, placement)


def predict_placement_scalar(model, placement: Placement) -> Dict[str, float]:
    """One-instance-at-a-time reference path of :func:`predict_placement`."""
    predictions: Dict[str, float] = {}
    for spec in placement.instances:
        key = spec.instance_key
        predictions[key] = model.predict_under_corunners(
            spec.workload,
            placement.spanned_nodes(key),
            placement.co_runner_workloads(key),
        )
    return predictions


def weighted_total_time(
    predictions: Mapping[str, float], placement: Placement
) -> float:
    """Sum of normalized runtimes, weighted by instance weight."""
    total = 0.0
    for spec in placement.instances:
        total += spec.weight * predictions[spec.instance_key]
    return total


def weighted_average_speedup(
    times: Mapping[str, float],
    reference_times: Mapping[str, float],
    placement: Placement,
) -> float:
    """Weighted mean of per-instance speedups over reference times.

    The paper's Figure 11 metric: each application's performance is the
    speedup of its execution time over the same application's time in
    the worst placement; the overall figure is the VM-weighted average.
    """
    total_weight = 0.0
    total = 0.0
    for spec in placement.instances:
        key = spec.instance_key
        reference = reference_times[key]
        if times[key] <= 0:
            raise PlacementError(f"non-positive time for {key}")
        total += spec.weight * (reference / times[key])
        total_weight += spec.weight
    return total / total_weight


@dataclass(frozen=True)
class QoSConstraint:
    """A mission-critical instance's latency bound.

    Parameters
    ----------
    instance_key:
        The protected instance.
    max_normalized_time:
        Largest admissible normalized execution time; the paper's
        "80% of solo performance" is ``1 / 0.8 = 1.25``.
    """

    instance_key: str
    max_normalized_time: float = 1.25

    def __post_init__(self) -> None:
        if self.max_normalized_time < 1.0:
            raise PlacementError(
                "max_normalized_time below 1.0 is unsatisfiable even solo"
            )

    def satisfied_by(self, predictions: Mapping[str, float]) -> bool:
        """Whether the constraint holds under the given predictions."""
        return predictions[self.instance_key] <= self.max_normalized_time

    def violation(self, predictions: Mapping[str, float]) -> float:
        """How far beyond the bound the prediction is (0 if satisfied)."""
        return max(0.0, predictions[self.instance_key] - self.max_normalized_time)


def qos_energy(
    predictions: Mapping[str, float],
    placement: Placement,
    constraints: Sequence[QoSConstraint],
    *,
    penalty: float = 1000.0,
) -> float:
    """Lexicographic QoS-then-throughput energy for annealing.

    Constraint violations dominate (scaled by ``penalty``) so the
    search first finds feasibility, then minimizes total weighted
    runtime among feasible placements — the acceptance order of
    Section 5.2.
    """
    energy = weighted_total_time(predictions, placement)
    for constraint in constraints:
        energy += penalty * constraint.violation(predictions)
    return energy


def qos_status(
    times: Mapping[str, float], constraints: Sequence[QoSConstraint]
) -> List[bool]:
    """Per-constraint satisfaction flags for measured times."""
    return [c.satisfied_by(times) for c in constraints]


# ----------------------------------------------------------------------
# Incremental (delta) evaluation
# ----------------------------------------------------------------------
#
# The annealing search proposes *unit swaps*: one unit of instance A
# trades nodes with one unit of instance B.  Only the two touched nodes
# change hands, so the only instances whose predicted time can move are
# those with a unit on either node — everyone else keeps the same
# spanned-node set and the same co-runners.  The protocol below lets
# the search re-predict just that handful while carrying the rest of
# the per-instance prediction table forward unchanged, which is what
# turns an O(instances) energy evaluation into an O(slots-per-node)
# one.


@dataclass
class EnergyState:
    """A placement with its per-instance prediction table and energy.

    ``predictions`` is the cached table delta evaluation carries
    forward; ``energy`` is always re-aggregated from the full table so
    incremental and full evaluation agree bit-for-bit (no running-sum
    drift).
    """

    placement: Placement
    predictions: Dict[str, float]
    energy: float


class IncrementalEnergy:
    """Protocol for placement energies that support delta evaluation.

    Implementations provide :meth:`full_state` (evaluate a placement
    from scratch) and :meth:`swap_state` (re-evaluate after a unit
    swap given the previous state).  Instances are also plain energy
    callables, so every consumer of ``EnergyFunction`` keeps working
    — :class:`~repro.placement.annealing.SimulatedAnnealingPlacer`
    simply takes the fast path when it detects the protocol.
    """

    def full_state(self, placement: Placement) -> EnergyState:
        """Evaluate ``placement`` from scratch."""
        raise NotImplementedError

    def swap_state(
        self,
        state: EnergyState,
        new_placement: Placement,
        touched_nodes: Iterable[int],
    ) -> EnergyState:
        """Evaluate ``new_placement``, reusing ``state`` where valid.

        ``touched_nodes`` are the nodes whose residents changed (the
        two endpoints of a unit swap).
        """
        raise NotImplementedError

    def __call__(self, placement: Placement) -> float:
        return self.full_state(placement).energy


class PredictionEnergy(IncrementalEnergy):
    """Base class for model-prediction-driven incremental energies.

    Subclasses implement :meth:`aggregate` (prediction table ->
    scalar energy); this class owns the expensive part — maintaining
    the per-instance prediction table across swaps — plus a memo of
    per-instance predictions keyed by the instance's *local
    configuration* (its spanned nodes and the exact co-runner layout),
    which annealing revisits constantly.

    Parameters
    ----------
    model:
        Prediction model exposing ``predict_under_corunners``.
    """

    #: Memo entries kept before stale entries are evicted (a full
    #: annealing search revisits far fewer distinct local
    #: configurations).
    MEMO_LIMIT = 200_000

    #: Fewest memo misses routed through one vectorized
    #: ``predict_corunners_batch`` call; below this the per-call array
    #: setup outweighs the win and the scalar path (bit-identical
    #: anyway) is faster.  Swap deltas re-predict a handful of
    #: instances, so in practice only full-state evaluations of large
    #: placements batch.
    BATCH_MIN = 32

    def __init__(self, model) -> None:
        self.model = model
        self._memo: Dict[Tuple, float] = {}

    # -- subclass surface ---------------------------------------------
    def aggregate(
        self, predictions: Mapping[str, float], placement: Placement
    ) -> float:
        """Scalar energy of a full prediction table (cheap)."""
        raise NotImplementedError

    # -- prediction table maintenance ---------------------------------
    def _store(self, memo_key: Tuple, value: float) -> None:
        if len(self._memo) >= self.MEMO_LIMIT:
            # Evict only the oldest half (dict preserves insertion
            # order) so a long search keeps its warm recent entries
            # instead of losing the whole table at the limit.
            for stale in list(islice(iter(self._memo), self.MEMO_LIMIT // 2)):
                del self._memo[stale]
        self._memo[memo_key] = value

    def _predict_table(
        self, placement: Placement, keys: Sequence[str]
    ) -> Dict[str, float]:
        """Memoized predictions for ``keys``, misses batched together."""
        memo_keys: List[Tuple] = []
        # Values are captured here as they are resolved (not re-read
        # from the memo at the end): a huge table could trip eviction
        # mid-call and drop entries this very call produced.
        resolved: Dict[Tuple, float] = {}
        missing: List[Tuple[Tuple, str, List[int], Dict[int, List[str]]]] = []
        for key in keys:
            spec = placement.instance(key)
            nodes = placement.spanned_nodes(key)
            co_runners = placement.co_runner_workloads(key)
            # The co-runner lists keep placement iteration order (NOT
            # sorted): combining pressures sums floats in list order,
            # so a reordered key could replay a bit-different result.
            memo_key = (
                spec.workload,
                tuple((node, tuple(co_runners[node])) for node in nodes),
            )
            memo_keys.append(memo_key)
            cached = self._memo.get(memo_key)
            if cached is None:
                if memo_key not in resolved:
                    missing.append((memo_key, spec.workload, nodes, co_runners))
                    resolved[memo_key] = 0.0  # placeholder, filled below
            else:
                resolved[memo_key] = cached
        if missing:
            batch = getattr(self.model, "predict_corunners_batch", None)
            if batch is not None and len(missing) >= self.BATCH_MIN:
                values = batch(
                    [(workload, nodes, co_runners)
                     for _, workload, nodes, co_runners in missing]
                )
                for (memo_key, *_), value in zip(missing, values):
                    self._store(memo_key, float(value))
                    resolved[memo_key] = float(value)
            else:
                for memo_key, workload, nodes, co_runners in missing:
                    value = self.model.predict_under_corunners(
                        workload, nodes, co_runners
                    )
                    self._store(memo_key, value)
                    resolved[memo_key] = value
        return {
            key: resolved[memo_key]
            for key, memo_key in zip(keys, memo_keys)
        }

    def _predict(self, placement: Placement, key: str) -> float:
        return self._predict_table(placement, [key])[key]

    def full_state(self, placement: Placement) -> EnergyState:
        predictions = self._predict_table(
            placement, [spec.instance_key for spec in placement.instances]
        )
        return EnergyState(
            placement, predictions, self.aggregate(predictions, placement)
        )

    def swap_state(
        self,
        state: EnergyState,
        new_placement: Placement,
        touched_nodes: Iterable[int],
    ) -> EnergyState:
        touched = set(touched_nodes)
        changed = [
            spec.instance_key
            for spec in new_placement.instances
            if touched.intersection(new_placement.nodes_of(spec.instance_key))
        ]
        predictions = dict(state.predictions)
        predictions.update(self._predict_table(new_placement, changed))
        return EnergyState(
            new_placement, predictions, self.aggregate(predictions, new_placement)
        )

    def __getstate__(self) -> dict:
        # The memo is a per-process accelerator, not state: shipping it
        # to fan-out workers would be pure pickling weight.
        state = dict(self.__dict__)
        state["_memo"] = {}
        return state


class WeightedTimeEnergy(PredictionEnergy):
    """Total weighted normalized runtime (Section 5.3's objective).

    ``sign=-1`` turns the minimizer into the *worst-placement* search
    of Figure 11.
    """

    def __init__(self, model, *, sign: float = 1.0) -> None:
        super().__init__(model)
        if sign not in (1.0, -1.0):
            raise PlacementError("sign must be +1.0 or -1.0")
        self.sign = sign

    def aggregate(
        self, predictions: Mapping[str, float], placement: Placement
    ) -> float:
        return self.sign * weighted_total_time(predictions, placement)
