"""Placement objectives and constraints (Sections 5.2-5.3).

The placement algorithms optimize over *model predictions*: a candidate
placement is scored by predicting every instance's normalized execution
time and aggregating.  Two aggregates appear in the paper:

* the **sum of normalized runtimes weighted by VM count** (Figure 10's
  right-hand axis), minimized by both placers; and
* **QoS feasibility**: a mission-critical application must retain a
  fraction of its solo performance (80% in the experiments, i.e.
  normalized time <= 1/0.8 = 1.25).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.errors import PlacementError
from repro.placement.assignment import Placement


def predict_placement(model, placement: Placement) -> Dict[str, float]:
    """Predicted normalized time per instance under a placement.

    ``model`` may be the interference-aware model or the naive
    proportional model — both expose ``predict_under_corunners``.
    """
    predictions: Dict[str, float] = {}
    for spec in placement.instances:
        key = spec.instance_key
        predictions[key] = model.predict_under_corunners(
            spec.workload,
            placement.spanned_nodes(key),
            placement.co_runner_workloads(key),
        )
    return predictions


def weighted_total_time(
    predictions: Mapping[str, float], placement: Placement
) -> float:
    """Sum of normalized runtimes, weighted by instance weight."""
    total = 0.0
    for spec in placement.instances:
        total += spec.weight * predictions[spec.instance_key]
    return total


def weighted_average_speedup(
    times: Mapping[str, float],
    reference_times: Mapping[str, float],
    placement: Placement,
) -> float:
    """Weighted mean of per-instance speedups over reference times.

    The paper's Figure 11 metric: each application's performance is the
    speedup of its execution time over the same application's time in
    the worst placement; the overall figure is the VM-weighted average.
    """
    total_weight = 0.0
    total = 0.0
    for spec in placement.instances:
        key = spec.instance_key
        reference = reference_times[key]
        if times[key] <= 0:
            raise PlacementError(f"non-positive time for {key}")
        total += spec.weight * (reference / times[key])
        total_weight += spec.weight
    return total / total_weight


@dataclass(frozen=True)
class QoSConstraint:
    """A mission-critical instance's latency bound.

    Parameters
    ----------
    instance_key:
        The protected instance.
    max_normalized_time:
        Largest admissible normalized execution time; the paper's
        "80% of solo performance" is ``1 / 0.8 = 1.25``.
    """

    instance_key: str
    max_normalized_time: float = 1.25

    def __post_init__(self) -> None:
        if self.max_normalized_time < 1.0:
            raise PlacementError(
                "max_normalized_time below 1.0 is unsatisfiable even solo"
            )

    def satisfied_by(self, predictions: Mapping[str, float]) -> bool:
        """Whether the constraint holds under the given predictions."""
        return predictions[self.instance_key] <= self.max_normalized_time

    def violation(self, predictions: Mapping[str, float]) -> float:
        """How far beyond the bound the prediction is (0 if satisfied)."""
        return max(0.0, predictions[self.instance_key] - self.max_normalized_time)


def qos_energy(
    predictions: Mapping[str, float],
    placement: Placement,
    constraints: Sequence[QoSConstraint],
    *,
    penalty: float = 1000.0,
) -> float:
    """Lexicographic QoS-then-throughput energy for annealing.

    Constraint violations dominate (scaled by ``penalty``) so the
    search first finds feasibility, then minimizes total weighted
    runtime among feasible placements — the acceptance order of
    Section 5.2.
    """
    energy = weighted_total_time(predictions, placement)
    for constraint in constraints:
        energy += penalty * constraint.violation(predictions)
    return energy


def qos_status(
    times: Mapping[str, float], constraints: Sequence[QoSConstraint]
) -> List[bool]:
    """Per-constraint satisfaction flags for measured times."""
    return [c.satisfied_by(times) for c in constraints]
