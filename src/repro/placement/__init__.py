"""Interference-aware placement algorithms (the paper's case studies)."""

from repro.placement.annealing import (
    AnnealingSchedule,
    SearchResult,
    SimulatedAnnealingPlacer,
)
from repro.placement.assignment import InstanceSpec, Placement
from repro.placement.objectives import (
    EnergyState,
    IncrementalEnergy,
    PredictionEnergy,
    QoSConstraint,
    WeightedTimeEnergy,
    predict_placement,
    qos_energy,
    qos_status,
    weighted_average_speedup,
    weighted_total_time,
)
from repro.placement.dynamic import DynamicRescheduler, EpochRecord, units_moved
from repro.placement.qos import QoSAwarePlacer, QoSPlacementResult
from repro.placement.search import (
    GreedyPlacer,
    average_random_total_time,
    exhaustive_best,
    random_placements,
)
from repro.placement.throughput import ThroughputPlacementResult, ThroughputPlacer

__all__ = [
    "AnnealingSchedule",
    "DynamicRescheduler",
    "EnergyState",
    "EpochRecord",
    "GreedyPlacer",
    "IncrementalEnergy",
    "InstanceSpec",
    "Placement",
    "PredictionEnergy",
    "WeightedTimeEnergy",
    "QoSAwarePlacer",
    "QoSConstraint",
    "QoSPlacementResult",
    "SearchResult",
    "SimulatedAnnealingPlacer",
    "ThroughputPlacementResult",
    "ThroughputPlacer",
    "average_random_total_time",
    "exhaustive_best",
    "predict_placement",
    "qos_energy",
    "qos_status",
    "random_placements",
    "units_moved",
    "weighted_average_speedup",
    "weighted_total_time",
]
