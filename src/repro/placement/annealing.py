"""Simulated-annealing placement search (Section 5.1).

The paper's placer starts from a random assignment and repeatedly
swaps the locations of two VM units belonging to different workloads,
keeping swaps that improve the (model-predicted) objective while
respecting QoS constraints, for a fixed number of iterations.  The
implementation here is a standard simulated annealing loop: worse
moves are accepted with probability ``exp(-delta / T)`` under a
geometric cooling schedule, which degenerates to the paper's stochastic
hill climbing when ``initial_temperature`` is 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro._util import make_rng
from repro.errors import PlacementError
from repro.placement.assignment import Placement

EnergyFunction = Callable[[Placement], float]


@dataclass(frozen=True)
class AnnealingSchedule:
    """Cooling schedule for the annealing search.

    Parameters
    ----------
    iterations:
        Number of proposed swaps.
    initial_temperature:
        Starting temperature; 0 yields pure hill climbing.
    final_temperature:
        Temperature at the last iteration (geometric decay).
    restarts:
        Independent searches from fresh random placements; the best
        result across restarts is returned.
    """

    iterations: int = 3000
    initial_temperature: float = 0.05
    final_temperature: float = 1e-4
    restarts: int = 3

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise PlacementError("iterations must be positive")
        if self.initial_temperature < 0 or self.final_temperature < 0:
            raise PlacementError("temperatures must be non-negative")
        if self.restarts <= 0:
            raise PlacementError("restarts must be positive")

    def temperature(self, iteration: int) -> float:
        """Temperature at ``iteration`` (geometric interpolation)."""
        if self.initial_temperature <= 0:
            return 0.0
        if self.iterations == 1:
            return self.initial_temperature
        floor = max(self.final_temperature, 1e-12)
        ratio = floor / self.initial_temperature
        return self.initial_temperature * ratio ** (
            iteration / (self.iterations - 1)
        )


@dataclass
class SearchResult:
    """Outcome of an annealing search."""

    placement: Placement
    energy: float
    evaluations: int
    accepted_moves: int
    energy_trajectory: List[float]


class SimulatedAnnealingPlacer:
    """Searches placements by annealed unit swaps.

    Parameters
    ----------
    energy:
        Placement score to *minimize* (model-predicted).
    schedule:
        Cooling schedule.
    seed:
        Randomness for initial placements and move proposals.
    """

    def __init__(
        self,
        energy: EnergyFunction,
        *,
        schedule: Optional[AnnealingSchedule] = None,
        seed: object = 0,
    ) -> None:
        self.energy = energy
        self.schedule = schedule or AnnealingSchedule()
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------
    def _propose_swap(self, placement: Placement) -> Optional[Placement]:
        """A random swap of two units of different instances."""
        keys = [spec.instance_key for spec in placement.instances]
        if len(keys) < 2:
            return None
        for _ in range(16):  # retry degenerate proposals
            idx_a, idx_b = self._rng.choice(len(keys), size=2, replace=False)
            key_a, key_b = keys[int(idx_a)], keys[int(idx_b)]
            unit_a = int(self._rng.integers(placement.instance(key_a).num_units))
            unit_b = int(self._rng.integers(placement.instance(key_b).num_units))
            if placement.nodes_of(key_a)[unit_a] == placement.nodes_of(key_b)[unit_b]:
                continue  # same node: a no-op swap
            try:
                return placement.swap_units(key_a, unit_a, key_b, unit_b)
            except PlacementError:
                continue
        return None

    def search_from(self, initial: Placement) -> SearchResult:
        """Run one annealing pass from a given placement."""
        current = initial
        current_energy = self.energy(current)
        best, best_energy = current, current_energy
        evaluations = 1
        accepted = 0
        trajectory = [current_energy]
        for iteration in range(self.schedule.iterations):
            candidate = self._propose_swap(current)
            if candidate is None:
                continue
            candidate_energy = self.energy(candidate)
            evaluations += 1
            delta = candidate_energy - current_energy
            temperature = self.schedule.temperature(iteration)
            accept = delta <= 0 or (
                temperature > 0
                and self._rng.random() < math.exp(-delta / temperature)
            )
            if accept:
                current, current_energy = candidate, candidate_energy
                accepted += 1
                if current_energy < best_energy:
                    best, best_energy = current, current_energy
            trajectory.append(current_energy)
        return SearchResult(
            placement=best,
            energy=best_energy,
            evaluations=evaluations,
            accepted_moves=accepted,
            energy_trajectory=trajectory,
        )

    def search(
        self, initial_factory: Callable[[object], Placement]
    ) -> SearchResult:
        """Best result across the schedule's restarts.

        Parameters
        ----------
        initial_factory:
            Called with a seed per restart to produce the starting
            placement (typically :meth:`Placement.random`).
        """
        best: Optional[SearchResult] = None
        for restart in range(self.schedule.restarts):
            seed = int(self._rng.integers(0, 2**31))
            result = self.search_from(initial_factory(seed))
            if best is None or result.energy < best.energy:
                best = result
        assert best is not None
        return best
