"""Simulated-annealing placement search (Section 5.1).

The paper's placer starts from a random assignment and repeatedly
swaps the locations of two VM units belonging to different workloads,
keeping swaps that improve the (model-predicted) objective while
respecting QoS constraints, for a fixed number of iterations.  The
implementation here is a standard simulated annealing loop: worse
moves are accepted with probability ``exp(-delta / T)`` under a
geometric cooling schedule, which degenerates to the paper's stochastic
hill climbing when ``initial_temperature`` is 0.

Two fast paths keep large searches cheap:

* **Incremental energy** — when the energy implements the
  :class:`~repro.placement.objectives.IncrementalEnergy` protocol,
  each proposed swap re-predicts only the instances with units on the
  two touched nodes instead of the whole mix, carrying a per-instance
  prediction table across moves.  Results are bit-identical to full
  evaluation (the scalar energy is always re-aggregated from the full
  table).
* **Parallel restarts** — each restart owns an independent random
  stream derived up front from the placer seed, so restarts can run
  in worker processes (``max_workers``) with results bit-identical to
  the serial loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro._util import make_rng
from repro.errors import PlacementError
from repro.obs import recorder as _obs
from repro.parallel import fan_out
from repro.placement.assignment import Placement
from repro.placement.objectives import IncrementalEnergy

EnergyFunction = Callable[[Placement], float]

#: Upper bound on auto-subsampled trajectory points per restart.
MAX_TRAJECTORY_POINTS = 512


@dataclass(frozen=True)
class AnnealingSchedule:
    """Cooling schedule for the annealing search.

    Parameters
    ----------
    iterations:
        Number of proposed swaps.
    initial_temperature:
        Starting temperature; 0 yields pure hill climbing.
    final_temperature:
        Temperature at the last iteration (geometric decay).
    restarts:
        Independent searches from fresh random placements; the best
        result across restarts is returned.
    trajectory_stride:
        Record every ``stride``-th accepted-energy point in
        :attr:`SearchResult.energy_trajectory`.  ``None`` picks a
        stride that caps the trajectory at
        :data:`MAX_TRAJECTORY_POINTS` points, so long schedules do not
        hold thousands of floats per restart.  Use 1 to record every
        proposal.
    """

    iterations: int = 3000
    initial_temperature: float = 0.05
    final_temperature: float = 1e-4
    restarts: int = 3
    trajectory_stride: Optional[int] = None

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise PlacementError("iterations must be positive")
        if self.initial_temperature < 0 or self.final_temperature < 0:
            raise PlacementError("temperatures must be non-negative")
        if self.restarts <= 0:
            raise PlacementError("restarts must be positive")
        if self.trajectory_stride is not None and self.trajectory_stride <= 0:
            raise PlacementError("trajectory_stride must be positive")

    def temperature(self, iteration: int) -> float:
        """Temperature at ``iteration`` (geometric interpolation)."""
        if self.initial_temperature <= 0:
            return 0.0
        if self.iterations == 1:
            return self.initial_temperature
        floor = max(self.final_temperature, 1e-12)
        ratio = floor / self.initial_temperature
        return self.initial_temperature * ratio ** (
            iteration / (self.iterations - 1)
        )

    def effective_stride(self) -> int:
        """Trajectory stride actually applied (resolves the auto mode)."""
        if self.trajectory_stride is not None:
            return self.trajectory_stride
        return max(1, self.iterations // MAX_TRAJECTORY_POINTS)


@dataclass
class SearchResult:
    """Outcome of an annealing search."""

    placement: Placement
    energy: float
    evaluations: int
    accepted_moves: int
    energy_trajectory: List[float]


def _run_restart(plan: Tuple) -> SearchResult:
    """One restart, self-contained so it can run in a worker process."""
    energy, schedule, initial, search_seed = plan
    placer = SimulatedAnnealingPlacer(energy, schedule=schedule, seed=search_seed)
    return placer.search_from(initial)


class SimulatedAnnealingPlacer:
    """Searches placements by annealed unit swaps.

    Parameters
    ----------
    energy:
        Placement score to *minimize* (model-predicted).  Plain
        callables are fully evaluated per proposal; objects
        implementing :class:`IncrementalEnergy` get delta evaluation.
    schedule:
        Cooling schedule.
    seed:
        Randomness for initial placements and move proposals.
    """

    def __init__(
        self,
        energy: EnergyFunction,
        *,
        schedule: Optional[AnnealingSchedule] = None,
        seed: object = 0,
    ) -> None:
        self.energy = energy
        self.schedule = schedule or AnnealingSchedule()
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------
    def _propose_swap(
        self, placement: Placement, rng
    ) -> Optional[Tuple[Placement, Tuple[int, int]]]:
        """A random swap of two units of different instances.

        Returns the new placement plus the two nodes that traded
        residents (the delta-evaluation frontier), or ``None`` if no
        valid proposal was found.
        """
        keys = [spec.instance_key for spec in placement.instances]
        if len(keys) < 2:
            return None
        for _ in range(16):  # retry degenerate proposals
            idx_a, idx_b = rng.choice(len(keys), size=2, replace=False)
            key_a, key_b = keys[int(idx_a)], keys[int(idx_b)]
            unit_a = int(rng.integers(placement.instance(key_a).num_units))
            unit_b = int(rng.integers(placement.instance(key_b).num_units))
            node_a = placement.nodes_of(key_a)[unit_a]
            node_b = placement.nodes_of(key_b)[unit_b]
            if node_a == node_b:
                continue  # same node: a no-op swap
            try:
                swapped = placement.swap_units(key_a, unit_a, key_b, unit_b)
            except PlacementError:
                continue
            return swapped, (node_a, node_b)
        return None

    def search_from(
        self, initial: Placement, *, rng=None
    ) -> SearchResult:
        """Run one annealing pass from a given placement.

        Telemetry: the whole pass is one ``anneal.restart`` span;
        accepted/rejected-swap and incremental-vs-full-evaluation
        counters are flushed once when the pass ends, so the proposal
        loop itself carries no instrumentation.
        """
        rng = rng if rng is not None else self._rng
        incremental = isinstance(self.energy, IncrementalEnergy)
        stride = self.schedule.effective_stride()
        with _obs.RECORDER.span(
            "anneal.restart",
            iterations=self.schedule.iterations,
            incremental=incremental,
        ) as obs_span:
            current = initial
            if incremental:
                state = self.energy.full_state(current)
                current_energy = state.energy
            else:
                state = None
                current_energy = self.energy(current)
            best, best_energy = current, current_energy
            evaluations = 1
            accepted = 0
            trajectory = [current_energy]
            for iteration in range(self.schedule.iterations):
                proposal = self._propose_swap(current, rng)
                if proposal is None:
                    continue
                candidate, touched_nodes = proposal
                if incremental:
                    candidate_state = self.energy.swap_state(
                        state, candidate, touched_nodes
                    )
                    candidate_energy = candidate_state.energy
                else:
                    candidate_state = None
                    candidate_energy = self.energy(candidate)
                evaluations += 1
                delta = candidate_energy - current_energy
                temperature = self.schedule.temperature(iteration)
                accept = delta <= 0 or (
                    temperature > 0
                    and rng.random() < math.exp(-delta / temperature)
                )
                if accept:
                    current, current_energy = candidate, candidate_energy
                    state = candidate_state
                    accepted += 1
                    if current_energy < best_energy:
                        best, best_energy = current, current_energy
                if iteration % stride == 0:
                    trajectory.append(current_energy)
            if stride > 1:
                trajectory.append(current_energy)
            obs_span.set(
                energy=best_energy, evaluations=evaluations, accepted=accepted
            )
            recorder = _obs.RECORDER
            recorder.count("anneal.accepted_swaps", accepted)
            recorder.count("anneal.rejected_swaps", evaluations - 1 - accepted)
            recorder.count(
                "anneal.incremental_evals" if incremental
                else "anneal.full_evals",
                evaluations,
            )
        return SearchResult(
            placement=best,
            energy=best_energy,
            evaluations=evaluations,
            accepted_moves=accepted,
            energy_trajectory=trajectory,
        )

    def search(
        self,
        initial_factory: Callable[[object], Placement],
        *,
        max_workers: Optional[int] = None,
    ) -> SearchResult:
        """Best result across the schedule's restarts.

        Parameters
        ----------
        initial_factory:
            Called with a seed per restart to produce the starting
            placement (typically :meth:`Placement.random`).
        max_workers:
            Fan restarts out over worker processes.  Every restart's
            random stream is derived up front from the placer seed, so
            the result is bit-identical to the serial loop
            (``None``/``0``/``1``).

        Notes
        -----
        Initial placements are built in the parent process (the
        factory may close over unpicklable state); only the search
        itself is fanned out.
        """
        with _obs.RECORDER.span(
            "anneal.search", restarts=self.schedule.restarts
        ) as obs_span:
            plans = []
            for _ in range(self.schedule.restarts):
                init_seed = int(self._rng.integers(0, 2**31))
                search_seed = int(self._rng.integers(0, 2**31))
                plans.append(
                    (self.energy, self.schedule, initial_factory(init_seed),
                     search_seed)
                )
            results = fan_out(_run_restart, plans, max_workers=max_workers)
            best: Optional[SearchResult] = None
            for result in results:
                if best is None or result.energy < best.energy:
                    best = result
            assert best is not None
            obs_span.set(energy=best.energy)
        return best
