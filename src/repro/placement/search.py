"""Non-annealing placement baselines.

* :func:`random_placements` — the paper's ``Random`` reference
  (the average of five random placements in Figure 11).
* :class:`GreedyPlacer` — a pack-greedily baseline used by the
  ablation benches to show what the annealing search buys.
* :func:`exhaustive_best` — exact search for tiny problems, used by
  tests to certify the annealing search's quality.
"""

from __future__ import annotations

from itertools import permutations
from typing import Callable, List, Sequence, Tuple

from repro._util import stable_seed
from repro.cluster.cluster import ClusterSpec
from repro.errors import PlacementError
from repro.placement.assignment import InstanceSpec, Placement
from repro.placement.objectives import predict_placement, weighted_total_time


def random_placements(
    cluster_spec: ClusterSpec,
    instances: Sequence[InstanceSpec],
    *,
    count: int = 5,
    seed: object = 0,
) -> List[Placement]:
    """``count`` independent uniformly random placements."""
    if count <= 0:
        raise PlacementError("count must be positive")
    return [
        Placement.random(
            cluster_spec, instances, seed=stable_seed(seed, "random-placement", i)
        )
        for i in range(count)
    ]


class GreedyPlacer:
    """Greedy baseline: place units one at a time, cheapest node first.

    Instances are placed in descending bubble-score order (the loudest
    first); each unit goes to the free slot whose node currently holds
    the least combined pressure.  No backtracking — the gap to the
    annealing result is what the ablation bench measures.
    """

    def __init__(self, model, cluster_spec: ClusterSpec) -> None:
        self.model = model
        self.cluster_spec = cluster_spec

    def place(
        self, instances: Sequence[InstanceSpec], *, unit_slots_per_node: int = 2
    ) -> Placement:
        """Build a placement greedily."""
        free = {
            node: unit_slots_per_node for node in range(self.cluster_spec.num_nodes)
        }
        node_pressure = {node: 0.0 for node in free}
        node_residents: dict = {node: set() for node in free}
        ordered = sorted(
            instances,
            key=lambda spec: -self.model.profile(spec.workload).bubble_score,
        )
        assignment = {}
        for spec in ordered:
            score = self.model.profile(spec.workload).bubble_score
            nodes = []
            for _ in range(spec.num_units):
                candidates = [
                    node
                    for node, slots in free.items()
                    if slots > 0
                    and spec.instance_key not in node_residents[node]
                    and len(node_residents[node])
                    < self.cluster_spec.max_workloads_per_node
                ]
                if not candidates:
                    raise PlacementError("greedy placement ran out of slots")
                target = min(candidates, key=lambda n: (node_pressure[n], n))
                nodes.append(target)
                free[target] -= 1
                node_pressure[target] += score
                node_residents[target].add(spec.instance_key)
            assignment[spec.instance_key] = nodes
        return Placement(
            self.cluster_spec,
            instances,
            assignment,
            unit_slots_per_node=unit_slots_per_node,
        )


def exhaustive_best(
    cluster_spec: ClusterSpec,
    instances: Sequence[InstanceSpec],
    energy: Callable[[Placement], float],
    *,
    unit_slots_per_node: int = 2,
) -> Tuple[Placement, float]:
    """Exact minimum-energy placement by enumeration.

    Only feasible for tiny problems (tests); the number of assignments
    grows factorially with units.
    """
    slots = [
        node
        for node in range(cluster_spec.num_nodes)
        for _ in range(unit_slots_per_node)
    ]
    unit_owners: List[str] = []
    for spec in instances:
        unit_owners.extend([spec.instance_key] * spec.num_units)
    if len(unit_owners) > len(slots):
        raise PlacementError("instances do not fit the cluster")
    if len(slots) > 8:
        raise PlacementError(
            "exhaustive search is only supported for <= 8 unit slots"
        )

    best: Tuple[Placement, float] | None = None
    seen = set()
    for perm in permutations(range(len(slots)), len(unit_owners)):
        assignment: dict = {spec.instance_key: [] for spec in instances}
        for owner, slot_idx in zip(unit_owners, perm):
            assignment[owner].append(slots[slot_idx])
        signature = tuple(
            (key, tuple(sorted(nodes))) for key, nodes in sorted(assignment.items())
        )
        if signature in seen:
            continue
        seen.add(signature)
        try:
            placement = Placement(
                cluster_spec,
                instances,
                assignment,
                unit_slots_per_node=unit_slots_per_node,
            )
        except PlacementError:
            continue
        value = energy(placement)
        if best is None or value < best[1]:
            best = (placement, value)
    if best is None:
        raise PlacementError("no feasible placement exists")
    return best


def average_random_total_time(
    model,
    cluster_spec: ClusterSpec,
    instances: Sequence[InstanceSpec],
    *,
    count: int = 5,
    seed: object = 0,
) -> float:
    """Mean predicted total weighted time across random placements."""
    placements = random_placements(cluster_spec, instances, count=count, seed=seed)
    totals = [
        weighted_total_time(predict_placement(model, p), p) for p in placements
    ]
    return sum(totals) / len(totals)
