"""QoS-aware placement (Section 5.2).

Finds a placement that keeps a mission-critical distributed
application within its latency bound (80% of solo performance in the
paper's experiments) while minimizing the total weighted runtime of
everything else.  The paper's acceptance rule is lexicographic —
"the placement algorithm attempts to reduce the overall execution time
while meeting the QoS constraint first" — which this implementation
realizes as two annealing phases:

1. **Feasibility phase** — minimize the predicted constraint violation
   (with the constrained applications' mean co-runner pressure as a
   plateau-breaking tiebreaker: heterogeneity policies make the
   predicted time piecewise-constant, so the raw violation alone gives
   the search no gradient while a loud unit is still adjacent).
2. **Throughput phase** — from the feasible placement, minimize total
   weighted runtime, rejecting any move the model predicts to violate
   a constraint.

Model predictions drive both phases; ground-truth evaluation afterwards
tells whether the QoS actually held — which is exactly the comparison
Figure 10 makes between the proposed model and the naive model.

Both phase energies extend
:class:`~repro.placement.objectives.PredictionEnergy`, so the annealing
search evaluates swaps incrementally (only instances on the two touched
nodes are re-predicted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro._util import mean
from repro.cluster.cluster import ClusterSpec
from repro.placement.annealing import (
    AnnealingSchedule,
    SearchResult,
    SimulatedAnnealingPlacer,
)
from repro.placement.assignment import InstanceSpec, Placement
from repro.placement.objectives import (
    PredictionEnergy,
    QoSConstraint,
    predict_placement,
    weighted_total_time,
)

#: Weight of the mean-pressure tiebreaker in the feasibility phase.
PRESSURE_TIEBREAK = 0.05

#: Energy assigned to any infeasible placement in the throughput phase.
INFEASIBLE_ENERGY = 1e6


class ConstrainedEnergy(PredictionEnergy):
    """Shared shape of both QoS phase energies.

    Feasible placements score their total weighted runtime; infeasible
    ones score ``infeasible_base + violation`` plus a mean-pressure
    tiebreaker (heterogeneity policies make the predicted time
    piecewise-constant, so the violation alone often has no gradient
    while a loud unit is still adjacent to the target).
    """

    def __init__(
        self,
        model,
        constraints: Sequence[QoSConstraint],
        *,
        infeasible_base: float,
    ) -> None:
        super().__init__(model)
        self.constraints = list(constraints)
        self.infeasible_base = infeasible_base

    def _target_pressure(self, placement: Placement) -> float:
        """Mean predicted co-runner pressure on the constrained apps.

        When the model carries the NETWORK contention domain the mean
        runs over *both* per-domain vectors: a co-runner that is quiet
        on the compute dimension but saturates the target's uplinks
        must not win the infeasible-plateau tiebreak.  Flat-network
        models take the scalar-era path unchanged.
        """
        pressures: List[float] = []
        network = getattr(self.model, "has_network", False)
        for constraint in self.constraints:
            nodes = placement.spanned_nodes(constraint.instance_key)
            coworkers = placement.co_runner_workloads(constraint.instance_key)
            vector = self.model.pressure_vector(nodes, coworkers)
            pressures.extend(vector)
            if network:
                pressures.extend(
                    self.model.network_pressure_vector(nodes, coworkers)
                )
        return mean(pressures) if pressures else 0.0

    def aggregate(
        self, predictions: Mapping[str, float], placement: Placement
    ) -> float:
        violation = sum(c.violation(predictions) for c in self.constraints)
        if violation > 0:
            return (
                self.infeasible_base
                + violation
                + PRESSURE_TIEBREAK * self._target_pressure(placement)
            )
        return weighted_total_time(predictions, placement)


class FeasibilityEnergy(ConstrainedEnergy):
    """Phase-1 energy: head toward feasibility, then optimize.

    Once the model predicts feasibility the search optimizes throughput
    immediately.  A model that *underestimates* propagation stops
    cleaning the target's neighbourhood here and starts trading its
    headroom for total time — the failure mode Figure 10 demonstrates
    for the naive proportional model.
    """

    def __init__(self, model, constraints: Sequence[QoSConstraint]) -> None:
        super().__init__(model, constraints, infeasible_base=INFEASIBLE_ENERGY / 2)


class ConstrainedThroughputEnergy(ConstrainedEnergy):
    """Phase-2 energy: throughput among feasible placements.

    Infeasible placements keep the violation gradient: without it the
    throughput phase would random-walk on a flat infeasible plateau and
    destroy whatever the feasibility phase achieved when no
    predicted-feasible placement exists at all.
    """

    def __init__(self, model, constraints: Sequence[QoSConstraint]) -> None:
        super().__init__(model, constraints, infeasible_base=INFEASIBLE_ENERGY)


@dataclass
class QoSPlacementResult:
    """Outcome of a QoS-aware placement search."""

    placement: Placement
    predictions: Dict[str, float]
    constraints: Sequence[QoSConstraint]
    search: SearchResult

    @property
    def predicted_feasible(self) -> bool:
        """Whether the model predicts every constraint satisfied."""
        return all(c.satisfied_by(self.predictions) for c in self.constraints)


class QoSAwarePlacer:
    """Two-phase simulated-annealing placer with QoS-first objective.

    Parameters
    ----------
    model:
        Prediction model (interference-aware or naive); must expose
        ``predict_under_corunners`` and ``profile``-style bubble
        scores via ``pressure_vector`` (both models share these).
    cluster_spec:
        Cluster shape.
    constraints:
        QoS constraints to enforce.
    schedule:
        Annealing schedule (used for both phases).
    seed:
        Search randomness.
    max_workers:
        Fan phase-1 annealing restarts out over worker processes
        (results stay bit-identical to the serial search).
    """

    def __init__(
        self,
        model,
        cluster_spec: ClusterSpec,
        constraints: Sequence[QoSConstraint],
        *,
        schedule: Optional[AnnealingSchedule] = None,
        seed: object = 0,
        max_workers: Optional[int] = None,
    ) -> None:
        self.model = model
        self.cluster_spec = cluster_spec
        self.constraints = list(constraints)
        self.schedule = schedule or AnnealingSchedule()
        self.seed = seed
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    def place(self, instances: Sequence[InstanceSpec]) -> QoSPlacementResult:
        """Search for the best QoS-satisfying placement of ``instances``."""
        feasibility = SimulatedAnnealingPlacer(
            FeasibilityEnergy(self.model, self.constraints),
            schedule=self.schedule,
            seed=self.seed,
        )
        phase1 = feasibility.search(
            lambda seed: Placement.random(self.cluster_spec, instances, seed=seed),
            max_workers=self.max_workers,
        )
        throughput = SimulatedAnnealingPlacer(
            ConstrainedThroughputEnergy(self.model, self.constraints),
            schedule=self.schedule,
            seed=self.seed,
        )
        phase2 = throughput.search_from(phase1.placement)
        predictions = predict_placement(self.model, phase2.placement)
        return QoSPlacementResult(
            placement=phase2.placement,
            predictions=predictions,
            constraints=self.constraints,
            search=phase2,
        )
