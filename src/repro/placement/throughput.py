"""Throughput-oriented placement (Section 5.3).

Without QoS constraints the placer simply minimizes the total weighted
normalized runtime — equivalently, maximizes consolidated throughput.
The paper also searches for the *worst* placement (the reference point
of Figure 11's speedups), which is the same annealing loop with the
objective negated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cluster.cluster import ClusterSpec
from repro.placement.annealing import (
    AnnealingSchedule,
    SearchResult,
    SimulatedAnnealingPlacer,
)
from repro.placement.assignment import InstanceSpec, Placement
from repro.placement.objectives import WeightedTimeEnergy, predict_placement


@dataclass
class ThroughputPlacementResult:
    """Outcome of a throughput placement search."""

    placement: Placement
    predictions: Dict[str, float]
    search: SearchResult


class ThroughputPlacer:
    """Simulated-annealing placer maximizing overall throughput.

    Parameters
    ----------
    model:
        Prediction model; must expose ``predict_under_corunners``.
    cluster_spec:
        Cluster shape.
    schedule:
        Annealing schedule.
    seed:
        Search randomness.
    max_workers:
        Fan annealing restarts out over worker processes (results stay
        bit-identical to the serial search).
    """

    def __init__(
        self,
        model,
        cluster_spec: ClusterSpec,
        *,
        schedule: Optional[AnnealingSchedule] = None,
        seed: object = 0,
        max_workers: Optional[int] = None,
    ) -> None:
        self.model = model
        self.cluster_spec = cluster_spec
        self.schedule = schedule or AnnealingSchedule()
        self.seed = seed
        self.max_workers = max_workers

    def _search(
        self, instances: Sequence[InstanceSpec], sign: float
    ) -> ThroughputPlacementResult:
        energy = WeightedTimeEnergy(self.model, sign=sign)
        placer = SimulatedAnnealingPlacer(
            energy, schedule=self.schedule, seed=self.seed
        )
        result = placer.search(
            lambda seed: Placement.random(self.cluster_spec, instances, seed=seed),
            max_workers=self.max_workers,
        )
        return ThroughputPlacementResult(
            placement=result.placement,
            predictions=predict_placement(self.model, result.placement),
            search=result,
        )

    def best(self, instances: Sequence[InstanceSpec]) -> ThroughputPlacementResult:
        """Placement minimizing total weighted normalized runtime."""
        return self._search(instances, sign=1.0)

    def worst(self, instances: Sequence[InstanceSpec]) -> ThroughputPlacementResult:
        """Placement *maximizing* total runtime (Figure 11's baseline)."""
        return self._search(instances, sign=-1.0)
